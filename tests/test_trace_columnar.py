"""Columnar trace store: chunk geometry, streaming records, mutation view.

The contract under test (DESIGN.md section 5): the structure-of-arrays
encoding behind :class:`~repro.emulib.trace.Trace` is invisible at the
API -- iteration yields equal :class:`~repro.emulib.trace.DynInstr`
objects, digests are bit-identical to the historical list encoding and
independent of chunk boundaries, streamed
:class:`~repro.emulib.trace.TimingRecord`\\ s match the reference
constructor attribute for attribute, and the ``instructions`` escape
hatch still behaves like the list it replaced.
"""

import numpy as np
import pytest

from repro.cpu import Core, machine_config
from repro.emulib.fingerprint import trace_digest
from repro.emulib.trace import (CHUNK_ROWS, DynInstr, TimingRecord, Trace,
                                reg)
from repro.exp.engine import built_kernel
from repro.isa.alpha import ALPHA
from repro.core.mom_isa import MOM
from repro.isa.model import InstrClass, RegPool
from repro.memsys import PerfectMemory


def _mixed_rows(n):
    """A deterministic mix of scalar / vector / memory / branch rows."""
    rows = []
    for i in range(n):
        kind = i % 5
        if kind == 0:
            rows.append(DynInstr(ALPHA["addq"],
                                 srcs=(reg(RegPool.INT, i % 7),),
                                 dsts=(reg(RegPool.INT, (i + 1) % 7),)))
        elif kind == 1:
            rows.append(DynInstr(ALPHA["ldq"], addr=0x1000 + 8 * i,
                                 nbytes=8,
                                 dsts=(reg(RegPool.INT, i % 7),)))
        elif kind == 2:
            rows.append(DynInstr(MOM["momldq"], addr=0x2000 + 64 * i,
                                 nbytes=8, stride=32, vl=4 + i % 12,
                                 dsts=(reg(RegPool.MED, i % 5),)))
        elif kind == 3:
            rows.append(DynInstr(MOM["paddb"], vl=16,
                                 srcs=(reg(RegPool.MED, 0),
                                       reg(RegPool.MED, 1)),
                                 dsts=(reg(RegPool.MED, 2),)))
        else:
            rows.append(DynInstr(ALPHA["bne"], srcs=(reg(RegPool.INT, 1),),
                                 taken=bool(i % 3), site=1 + i % 4))
    return rows


def _fill(trace, rows):
    for row in rows:
        trace.append(row)
    return trace


def _assert_instr_equal(a, b):
    assert a.op is b.op
    for f in ("srcs", "dsts", "addr", "nbytes", "stride", "vl", "taken",
              "site"):
        assert getattr(a, f) == getattr(b, f), f


# --- chunk-boundary edge cases -------------------------------------------------

def test_empty_trace():
    t = Trace("alpha")
    assert len(t) == 0
    assert list(t) == []
    assert t.operation_count() == 0
    assert t.class_histogram() == {} and t.opcode_histogram() == {}
    assert t.timing_records() == []
    assert list(t.iter_timing_records()) == []
    assert trace_digest(t) == trace_digest(Trace("alpha"))
    with pytest.raises(IndexError):
        t[0]


@pytest.mark.parametrize("n,chunk", [
    (1, 4),          # staging only
    (4, 4),          # exactly one chunk, empty staging
    (8, 4),          # two exact chunks
    (11, 4),         # chunks + staging tail
    (5, CHUNK_ROWS),  # default geometry, staging only
])
def test_roundtrip_across_chunk_geometries(n, chunk):
    rows = _mixed_rows(n)
    t = _fill(Trace("mom", chunk_rows=chunk), rows)
    assert len(t) == n
    for got, want in zip(t, rows):
        _assert_instr_equal(got, want)
    for i in range(n):
        _assert_instr_equal(t[i], rows[i])
        _assert_instr_equal(t[i - n], rows[i])          # negative indexing
    assert [i.op.name for i in t[1:4]] == [r.op.name for r in rows[1:4]]


def test_digest_independent_of_chunk_geometry():
    rows = _mixed_rows(23)
    digests = {trace_digest(_fill(Trace("mom", chunk_rows=c), rows))
               for c in (1, 4, 7, 23, CHUNK_ROWS)}
    assert len(digests) == 1


def test_summary_matches_reference_loop_per_chunk_geometry():
    """Vectorized statistics equal the historical per-record walk."""
    rows = _mixed_rows(37)
    ref_ops = sum(r.vl * max(1, r.op.elem.lanes) for r in rows)
    ref_mem = sum(r.vl for r in rows if r.op.iclass.is_memory)
    ref_branch = sum(1 for r in rows if r.op.iclass == InstrClass.BRANCH)
    for chunk in (3, 37, CHUNK_ROWS):
        t = _fill(Trace("mom", chunk_rows=chunk), rows)
        assert t.operation_count() == ref_ops
        assert t.memory_references() == ref_mem
        assert t.branch_count() == ref_branch
        hist = t.opcode_histogram()
        assert sum(hist.values()) == len(rows)
        assert hist["paddb"] == sum(1 for r in rows if r.op.name == "paddb")


def test_append_after_summary_reseals_and_recounts():
    t = Trace("alpha", chunk_rows=2)
    t.append(DynInstr(ALPHA["addq"]))
    t.append(DynInstr(ALPHA["addq"]))               # seals chunk 0
    assert t.operation_count() == 2                 # caches a summary
    first = t.summary()
    t.append(DynInstr(ALPHA["ldq"], addr=8, nbytes=8))
    assert t.operation_count() == 3                 # invalidated + recounted
    assert t.summary() is not first
    assert t.memory_references() == 1
    assert len(t.timing_records()) == 3


def test_truncate_across_chunk_boundary():
    rows = _mixed_rows(10)
    t = _fill(Trace("mom", chunk_rows=4), rows)
    t.truncate(6)                                   # cuts into chunk 1
    assert len(t) == 6
    for got, want in zip(t, rows[:6]):
        _assert_instr_equal(got, want)
    assert trace_digest(t) == trace_digest(_fill(Trace("mom"), rows[:6]))
    t.truncate(6)                                   # no-op at exact length
    assert len(t) == 6
    t.truncate(0)
    assert len(t) == 0 and list(t) == []
    with pytest.raises(ValueError):
        t.truncate(-1)


# --- timing-record equivalence -------------------------------------------------

def _assert_record_equal(got: TimingRecord, want: TimingRecord):
    for f in ("iclass", "kind", "is_memory", "is_branch", "is_jump",
              "is_nop", "chains", "op_name", "latency", "vl", "exec_rows",
              "acc_chain_eligible", "writes_acc", "srcs", "dsts", "site",
              "taken"):
        assert getattr(got, f) == getattr(want, f), f


@pytest.mark.parametrize("kernel,isa", [("idct", "mom"), ("motion2", "mmx"),
                                        ("addblock", "alpha")])
def test_streamed_records_match_reference_constructor(kernel, isa):
    trace = built_kernel(kernel, isa).trace
    reference = [TimingRecord(ins) for ins in trace]
    streamed = list(trace.iter_timing_records())
    assert len(streamed) == len(reference)
    for got, want, ins in zip(streamed, reference, trace):
        _assert_record_equal(got, want)
        if got.is_memory:        # the only rows whose object form is used
            _assert_instr_equal(got.instr, ins)
        else:
            assert got.instr is None
    cached = trace.timing_records()
    for got, want, ins in zip(cached, reference, trace):
        _assert_record_equal(got, want)
        _assert_instr_equal(got.instr, ins)      # cached path keeps them all


def test_small_chunks_stream_identical_records():
    rows = _mixed_rows(50)
    base = _fill(Trace("mom"), rows)
    small = _fill(Trace("mom", chunk_rows=7), rows)
    for got, want in zip(small.iter_timing_records(),
                         base.iter_timing_records()):
        _assert_record_equal(got, want)


def test_streaming_core_path_is_bit_identical(monkeypatch):
    """Force the core's streaming consume path and diff every result field
    against the cached-record path on the same machine configuration."""
    built = built_kernel("idct", "mom")
    cfg = machine_config(4, "mom")

    def run(**env):
        for key, value in env.items():
            monkeypatch.setattr(Core, key, value)
        mem = PerfectMemory(1, cfg.mem_ports, cfg.mem_port_width)
        return Core(cfg, mem).run(built.trace)

    cached = run()
    built.trace.invalidate_summary()     # drop the record cache
    streamed = run(STREAM_THRESHOLD=0)
    assert streamed == cached


# --- extend: value copy, not aliasing (regression) -----------------------------

def test_extend_copies_rows_instead_of_aliasing():
    a, b = Trace("alpha"), Trace("alpha")
    a.append(DynInstr(ALPHA["addq"], dsts=(reg(RegPool.INT, 0),)))
    b.append(DynInstr(ALPHA["subq"], dsts=(reg(RegPool.INT, 1),)))
    a.extend(b)
    digest_a = trace_digest(a)
    summary_a = a.summary()

    # Mutating the source trace must not reach through to the extended
    # copy (the seed list encoding shared DynInstr instances here, so a
    # later in-place edit corrupted both streams and silently
    # desynchronized whichever cached TraceSummary the other trace held).
    b.instructions[0] = DynInstr(ALPHA["mulq"], dsts=(reg(RegPool.INT, 2),))
    b.invalidate_summary()
    assert b.opcode_histogram() == {"mulq": 1}
    assert trace_digest(a) == digest_a
    assert a[1].op.name == "subq"
    assert a.summary() is summary_a
    assert a.opcode_histogram() == {"addq": 1, "subq": 1}

    # And symmetrically: mutating the destination leaves the source alone.
    a.instructions[1] = DynInstr(ALPHA["bis"], dsts=(reg(RegPool.INT, 3),))
    a.invalidate_summary()
    assert b[0].op.name == "mulq"
    assert a.opcode_histogram() == {"addq": 1, "bis": 1}


def test_self_extend_doubles_the_stream():
    t = _fill(Trace("mom"), _mixed_rows(5))
    rows = list(t)
    t.extend(t)
    assert len(t) == 10
    for got, want in zip(t, rows + rows):
        _assert_instr_equal(got, want)


# --- the instructions escape hatch ---------------------------------------------

def test_instructions_view_reads_like_a_list():
    rows = _mixed_rows(9)
    t = _fill(Trace("mom", chunk_rows=4), rows)
    view = t.instructions
    assert len(view) == 9
    _assert_instr_equal(view[3], rows[3])
    assert [i.op.name for i in view] == [r.op.name for r in rows]
    assert [i.op.name for i in view[2:5]] == [r.op.name for r in rows[2:5]]


def test_direct_mutation_then_invalidate_summary():
    """The documented escape hatch: mutate ``instructions`` directly, then
    call ``invalidate_summary()`` -- the refreshed summary reflects the
    mutation, whatever storage block the row lived in."""
    for chunk in (2, CHUNK_ROWS):       # sealed-row and staging-row cases
        t = Trace("alpha", chunk_rows=chunk)
        t.append(DynInstr(ALPHA["addq"]))
        t.append(DynInstr(ALPHA["addq"]))
        t.append(DynInstr(ALPHA["addq"]))
        assert t.opcode_histogram() == {"addq": 3}
        t.instructions[1] = DynInstr(ALPHA["ldq"], addr=16, nbytes=8)
        t.invalidate_summary()
        assert t.opcode_histogram() == {"addq": 2, "ldq": 1}
        assert t.memory_references() == 1
        assert t[1].op.name == "ldq" and t[1].addr == 16


def test_view_tail_deletion_matches_list_semantics():
    rows = _mixed_rows(10)
    t = _fill(Trace("mom", chunk_rows=4), rows)
    mark = 6
    del t.instructions[mark:]           # the vc dry-run discard idiom
    t.invalidate_summary()
    assert len(t) == 6
    assert trace_digest(t) == trace_digest(_fill(Trace("mom"), rows[:6]))
    del t.instructions[2]
    t.invalidate_summary()
    expect = rows[:2] + rows[3:6]
    assert [i.op.name for i in t] == [r.op.name for r in expect]
    t.instructions.insert(0, rows[9])
    t.invalidate_summary()
    assert t[0].op.name == rows[9].op.name and len(t) == 6
    t.instructions.clear()
    assert len(t) == 0


def test_view_append_and_extend_write_through():
    t = Trace("alpha")
    t.instructions.append(DynInstr(ALPHA["addq"]))
    t.instructions.extend([DynInstr(ALPHA["subq"]),
                           DynInstr(ALPHA["mulq"])])
    t.invalidate_summary()
    assert [i.op.name for i in t] == ["addq", "subq", "mulq"]
    assert t.opcode_histogram() == {"addq": 1, "subq": 1, "mulq": 1}


# --- storage economics ---------------------------------------------------------

def test_columnar_storage_is_compact():
    """Sealed storage stays within tens of bytes per instruction -- the
    whole point of the encoding (the object form measured ~225 B/instr)."""
    t = _fill(Trace("mom", chunk_rows=1024), _mixed_rows(4096))
    per_row = t.storage_bytes() / 4096
    assert per_row < 80, per_row


def test_vl_column_survives_large_values():
    t = Trace("mom", chunk_rows=2)
    big = DynInstr(MOM["momldq"], addr=0x4000, nbytes=8, stride=1 << 40,
                   vl=255, dsts=(reg(RegPool.MED, 0),))
    t.append(big)
    t.append(DynInstr(ALPHA["addq"]))       # seals the chunk
    _assert_instr_equal(t[0], big)
    assert np.int64(t[0].stride) == 1 << 40


def test_stale_summary_records_refuse_to_desynchronize():
    """A summary held across a mutation must not lazily build records of
    the *new* stream under the *old* statistics -- it raises instead."""
    t = _fill(Trace("mom"), _mixed_rows(6))
    stale = t.summary()                     # stats computed, records lazy
    t.append(DynInstr(ALPHA["addq"]))       # invalidates the cache
    with pytest.raises(RuntimeError, match="stale TraceSummary"):
        stale.records
    # The fresh summary works, and a summary whose records were built
    # *before* the mutation keeps serving them (snapshot semantics).
    assert len(t.summary().records) == 7
    snap = t.summary()
    records = snap.records
    t.append(DynInstr(ALPHA["addq"]))
    assert snap.records is records
