"""Integration tests for the per-ISA application stage emitters.

Every stage must produce identical bytes in memory on all three ISA
configurations, matching the numpy reference; these are the pieces from
which Figure 7's applications are composed.
"""

import numpy as np
import pytest

from repro.apps.common import make_stages
from repro.apps.reference import (addblock_ref, avg_ref, dequant_ref,
                                  downsample2_ref, dot16_ref, quant_ref,
                                  residual_ref, rgb2ycc_ref, transform8_ref,
                                  upsample2_ref, ycc2rgb_ref)
from repro.apps.stages import FDCT_MAT, IDCT_MAT

ISAS = ("alpha", "mmx", "mom")
RNG = np.random.default_rng(42)


def setup_stage(isa):
    return make_stages(isa)


@pytest.mark.parametrize("isa", ISAS)
def test_sad16_stage(isa):
    b, st = setup_stage(isa)
    ref = RNG.integers(0, 256, (24, 64), dtype=np.uint8)
    blk = RNG.integers(0, 256, (16, 16), dtype=np.uint8)
    ref_addr = b.mem.alloc_array(ref)
    blk_addr = b.mem.alloc_array(blk)
    out = b.ireg()
    st.sad16(ref_addr + 3 * 64 + 5, 64, blk_addr, 16, out)
    expected = int(np.abs(
        ref[3:19, 5:21].astype(int) - blk.astype(int)).sum())
    assert int(out.value) == expected


@pytest.mark.parametrize("isa", ISAS)
def test_motion_search_stage(isa):
    b, st = setup_stage(isa)
    ref = RNG.integers(0, 256, (24, 64), dtype=np.uint8)
    blk = ref[4:20, 8:24].copy()
    ref_addr = b.mem.alloc_array(ref)
    blk_addr = b.mem.alloc_array(blk)
    candidates = [ref_addr + y * 64 + x
                  for y, x in ((0, 0), (4, 8), (2, 2), (5, 9))]
    best = st.motion_search(candidates, 64, blk_addr, 16)
    assert best == 1      # exact match position


@pytest.mark.parametrize("isa", ISAS)
def test_copy_and_avg_stages(isa):
    b, st = setup_stage(isa)
    a = RNG.integers(0, 256, (16, 16), dtype=np.uint8)
    c = RNG.integers(0, 256, (16, 16), dtype=np.uint8)
    a_addr, c_addr = b.mem.alloc_array(a), b.mem.alloc_array(c)
    dst = b.mem.alloc(256)
    st.copy_block(a_addr, 16, dst, 16, 16, 16)
    assert (b.mem.load_array(dst, np.uint8, 256).reshape(16, 16) == a).all()
    st.avg_block(a_addr, 16, c_addr, 16, dst, 16, 16, 16)
    got = b.mem.load_array(dst, np.uint8, 256).reshape(16, 16)
    assert (got == avg_ref(a, c)).all()


@pytest.mark.parametrize("isa", ISAS)
def test_residual_and_addblock_stages(isa):
    b, st = setup_stage(isa)
    cur = RNG.integers(0, 256, (8, 8), dtype=np.uint8)
    pred = RNG.integers(0, 256, (8, 8), dtype=np.uint8)
    resid_expect = residual_ref(cur, pred)
    cur_addr = b.mem.alloc_array(cur)
    pred_addr = b.mem.alloc_array(pred)
    resid_addr = b.mem.alloc(128)
    st.residual8(cur_addr, 8, pred_addr, 8, resid_addr)
    got = b.mem.load_array(resid_addr, np.int16, 64).reshape(8, 8)
    assert (got == resid_expect).all()

    out_addr = b.mem.alloc(64)
    st.addblock8(pred_addr, 8, resid_addr, out_addr, 8)
    got2 = b.mem.load_array(out_addr, np.uint8, 64).reshape(8, 8)
    assert (got2 == addblock_ref(pred, resid_expect)).all()
    assert (got2 == cur).all()     # pred + (cur - pred) clamps back to cur


@pytest.mark.parametrize("isa", ISAS)
@pytest.mark.parametrize("mat,clamp", [(FDCT_MAT, False), (IDCT_MAT, True)])
def test_transform_stage(isa, mat, clamp):
    b, st = setup_stage(isa)
    block = RNG.integers(-256, 256, (8, 8)).astype(np.int16)
    src = b.mem.alloc_array(block)
    dst = b.mem.alloc(128)
    st.transform8(src, dst, mat, clamp)
    got = b.mem.load_array(dst, np.int16, 64).reshape(8, 8)
    assert (got == transform8_ref(block, mat, clamp)).all()


@pytest.mark.parametrize("isa", ISAS)
def test_transform_stage_constants_stay_resident(isa):
    """Two calls with the same matrix must not reload constants (mmx/mom)."""
    b, st = setup_stage(isa)
    block = np.zeros((8, 8), dtype=np.int16)
    src = b.mem.alloc_array(block)
    dst = b.mem.alloc(128)
    st.transform8(src, dst, IDCT_MAT, False)
    first = len(b.trace)
    st.transform8(src, dst, IDCT_MAT, False)
    second = len(b.trace) - first
    if isa != "alpha":
        assert second < first     # constant loads amortized


@pytest.mark.parametrize("isa", ISAS)
def test_quant_dequant_stage(isa):
    b, st = setup_stage(isa)
    coefs = RNG.integers(-2000, 2000, (8, 8)).astype(np.int16)
    addr = b.mem.alloc_array(coefs)
    st.quant8(addr)
    got_q = b.mem.load_array(addr, np.int16, 64).reshape(8, 8)
    assert (got_q == quant_ref(coefs)).all()
    st.dequant8(addr)
    got_d = b.mem.load_array(addr, np.int16, 64).reshape(8, 8)
    assert (got_d == dequant_ref(quant_ref(coefs))).all()


@pytest.mark.parametrize("isa", ISAS)
def test_rgb2ycc_stage(isa):
    b, st = setup_stage(isa)
    n = 128
    r = RNG.integers(0, 256, n, dtype=np.uint8)
    g = RNG.integers(0, 256, n, dtype=np.uint8)
    bb = RNG.integers(0, 256, n, dtype=np.uint8)
    base = b.mem.alloc(3 * n)
    b.mem.store_array(base, np.concatenate([r, g, bb]))
    y, cb, cr = b.mem.alloc(n), b.mem.alloc(n), b.mem.alloc(n)
    st.rgb2ycc(base, base + n, base + 2 * n, y, cb, cr, n)
    ey, ecb, ecr = rgb2ycc_ref(r, g, bb)
    assert (b.mem.load_array(y, np.uint8, n) == ey).all()
    assert (b.mem.load_array(cb, np.uint8, n) == ecb).all()
    assert (b.mem.load_array(cr, np.uint8, n) == ecr).all()


@pytest.mark.parametrize("isa", ISAS)
def test_ycc2rgb_stage(isa):
    b, st = setup_stage(isa)
    n = 128
    y = RNG.integers(0, 256, n, dtype=np.uint8)
    cb = RNG.integers(0, 256, n, dtype=np.uint8)
    cr = RNG.integers(0, 256, n, dtype=np.uint8)
    ya, cba, cra = (b.mem.alloc_array(p) for p in (y, cb, cr))
    r, g, bb = b.mem.alloc(n), b.mem.alloc(n), b.mem.alloc(n)
    st.ycc2rgb(ya, cba, cra, r, g, bb, n)
    er, eg, eb = ycc2rgb_ref(y, cb, cr)
    assert (b.mem.load_array(r, np.uint8, n) == er).all()
    assert (b.mem.load_array(g, np.uint8, n) == eg).all()
    assert (b.mem.load_array(bb, np.uint8, n) == eb).all()


@pytest.mark.parametrize("isa", ISAS)
def test_resample_stages(isa):
    b, st = setup_stage(isa)
    plane = RNG.integers(0, 256, (16, 32), dtype=np.uint8)
    src = b.mem.alloc_array(plane)
    down = b.mem.alloc(8 * 16)
    st.downsample2(src, 32, 16, down)
    got = b.mem.load_array(down, np.uint8, 8 * 16).reshape(8, 16)
    assert (got == downsample2_ref(plane)).all()

    up = b.mem.alloc(32 * 64)
    st.upsample2(src, 32, 16, up)
    got2 = b.mem.load_array(up, np.uint8, 32 * 64).reshape(32, 64)
    assert (got2 == upsample2_ref(plane)).all()


@pytest.mark.parametrize("isa", ISAS)
@pytest.mark.parametrize("n", [40, 152])
def test_dot16_stage(isa, n):
    b, st = setup_stage(isa)
    x = RNG.integers(-2048, 2048, n).astype(np.int16)
    y = RNG.integers(-2048, 2048, n).astype(np.int16)
    xa, ya = b.mem.alloc_array(x), b.mem.alloc_array(y)
    out = b.ireg()
    st.dot16(xa, ya, n, out)
    assert int(out.value) == dot16_ref(x, y)


@pytest.mark.parametrize("isa", ("mmx", "mom"))
def test_media_stages_emit_fewer_instructions(isa):
    """Each media stage must be shorter than its scalar counterpart."""
    scalar_b, scalar_st = setup_stage("alpha")
    media_b, media_st = setup_stage(isa)
    cur = RNG.integers(0, 256, (8, 8), dtype=np.uint8)
    pred = RNG.integers(0, 256, (8, 8), dtype=np.uint8)
    for b, st in ((scalar_b, scalar_st), (media_b, media_st)):
        c = b.mem.alloc_array(cur)
        p = b.mem.alloc_array(pred)
        d = b.mem.alloc(128)
        st.residual8(c, 8, p, 8, d)
    assert len(media_b.trace) < len(scalar_b.trace)
