"""The cached-records / streaming crossover is seamless at the boundary.

``Core.run`` (and ``BatchCore.run``) pick their record source by trace
size: below ``STREAM_THRESHOLD`` (or whenever a record list is already
cached) they walk the cached ``timing_records()`` list; at or above it
they stream ``TimingRecords`` chunk by chunk.  These tests pin that a
trace at exactly the threshold and at ``threshold +- 1`` produces
bit-identical ``SimResult`` digests through both paths, so the crossover
can never shift timing.

The default threshold (1 << 20 instructions) would need megainstruction
traces, so the boundary is exercised by lowering ``STREAM_THRESHOLD`` to
a kernel-sized value -- the selection logic is identical, only the
constant moves.
"""

import pytest

from repro.cpu import Core, machine_config
from repro.cpu.batch import BatchCore, LaneSpec
from repro.emulib.trace import Trace
from repro.exp.engine import built_kernel
from repro.memsys import PerfectMemory

from test_golden_digest import result_digest


def test_default_threshold_value():
    """The production crossover sits at 1M instructions (frame scale)."""
    assert Core.STREAM_THRESHOLD == 1 << 20
    assert BatchCore.STREAM_THRESHOLD == Core.STREAM_THRESHOLD


def _trace_of_length(n: int):
    """A trace of exactly ``n`` instructions (kernel trace, repeated).

    Built as a *fresh* ``Trace`` object: ``built_kernel`` memoizes per
    process, so extending/truncating its trace in place would corrupt
    every later test and benchmark sharing the memo (and, through the
    experiment engine, poison the on-disk result cache with results of
    the mutilated trace)."""
    seed = built_kernel("idct", "mmx").trace
    base = Trace(seed.isa)
    while len(base) < n:
        base.extend(seed)
    base.truncate(n)
    base.invalidate_summary()
    assert len(base) == n and not base.records_cached()
    return base


def _digest(trace, *, streamed: bool, monkeypatch, threshold: int) -> str:
    """One run through an explicitly-selected record source."""
    if streamed:
        monkeypatch.setattr(Core, "STREAM_THRESHOLD", threshold)
        trace.invalidate_summary()      # a cached list would win otherwise
    else:
        monkeypatch.setattr(Core, "STREAM_THRESHOLD", 1 << 60)
    core = Core(machine_config(4, "mmx"), PerfectMemory(1, 2, 1))
    result = core.run(trace)
    assert result.instructions == len(trace)
    return result_digest(result)


THRESHOLD = 512      # kernel-sized stand-in for 1 << 20


@pytest.mark.parametrize("n", [THRESHOLD - 1, THRESHOLD, THRESHOLD + 1],
                         ids=("below", "exact", "above"))
def test_boundary_lengths_digest_identically_through_both_paths(
        monkeypatch, n):
    trace = _trace_of_length(n)
    cached = _digest(trace, streamed=False, monkeypatch=monkeypatch,
                     threshold=THRESHOLD)
    streamed = _digest(trace, streamed=True, monkeypatch=monkeypatch,
                       threshold=THRESHOLD)
    assert cached == streamed


@pytest.mark.parametrize("n", [THRESHOLD - 1, THRESHOLD, THRESHOLD + 1],
                         ids=("below", "exact", "above"))
def test_boundary_lengths_batch_matches_core(monkeypatch, n):
    """BatchCore's source selection crosses over at the same point."""
    trace = _trace_of_length(n)
    ref = _digest(trace, streamed=False, monkeypatch=monkeypatch,
                  threshold=THRESHOLD)
    monkeypatch.setattr(BatchCore, "STREAM_THRESHOLD", THRESHOLD)
    trace.invalidate_summary()
    lanes = [LaneSpec(machine_config(4, "mmx"), PerfectMemory(1, 2, 1))]
    (result,) = BatchCore(lanes).run(trace)
    assert result_digest(result) == ref
