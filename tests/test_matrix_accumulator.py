"""Tests for the MOM matrix register and the packed accumulators."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.accumulator import PackedAccumulator, PipelinedAccumulation
from repro.core.matrix import MomRegister
from repro.core import packed
from repro.isa.model import ElemType

words16 = st.lists(st.integers(0, (1 << 64) - 1), min_size=16, max_size=16)


# --- MomRegister -----------------------------------------------------------------

def test_register_starts_zero():
    reg = MomRegister()
    assert (reg.rows == 0).all()


def test_register_requires_16_rows():
    with pytest.raises(ValueError):
        MomRegister(np.zeros(8, dtype=np.uint64))


def test_row_accessors_mask():
    reg = MomRegister()
    reg.set_row(3, -1)
    assert reg.get_row(3) == (1 << 64) - 1


def test_copy_is_independent():
    reg = MomRegister()
    dup = reg.copy()
    dup.set_row(0, 5)
    assert reg.get_row(0) == 0


def test_lane_matrix_roundtrip():
    lanes = np.arange(16 * 4, dtype=np.int64).reshape(16, 4)
    reg = MomRegister.from_lane_matrix(lanes, ElemType.H)
    assert (reg.to_lane_matrix(ElemType.H) == lanes).all()


def test_from_lane_matrix_validates_shape():
    with pytest.raises(ValueError):
        MomRegister.from_lane_matrix(np.zeros((16, 3)), ElemType.H)
    with pytest.raises(ValueError):
        MomRegister.from_lane_matrix(np.zeros((17, 4)), ElemType.H)


def test_partial_rows_zero_filled():
    reg = MomRegister.from_lane_matrix(np.ones((4, 8)), ElemType.B)
    assert reg.get_row(3) != 0
    assert reg.get_row(4) == 0


@given(words16)
@settings(max_examples=30)
def test_transpose_involution(rows):
    reg = MomRegister(np.asarray(rows, dtype=np.uint64))
    for elem in (ElemType.B, ElemType.H, ElemType.W):
        assert reg.transpose_blocks(elem).transpose_blocks(elem) == reg


def test_transpose_h_block_semantics():
    lanes = np.arange(16 * 4).reshape(16, 4)
    reg = MomRegister.from_lane_matrix(lanes, ElemType.H)
    out = reg.transpose_blocks(ElemType.H).to_lane_matrix(ElemType.H)
    for block in range(4):
        src = lanes[4 * block : 4 * block + 4]
        assert (out[4 * block : 4 * block + 4] == src.T).all()


def test_transpose_q_is_identity():
    reg = MomRegister(np.arange(16, dtype=np.uint64))
    assert reg.transpose_blocks(ElemType.Q) == reg


def test_row_shift_directions():
    reg = MomRegister(np.arange(16, dtype=np.uint64))
    up = reg.row_shift(towards_zero=True)
    assert up.get_row(0) == 1 and up.get_row(15) == 0
    down = reg.row_shift(towards_zero=False)
    assert down.get_row(0) == 0 and down.get_row(1) == 0


def test_equality_and_repr():
    a = MomRegister(np.arange(16, dtype=np.uint64))
    b = MomRegister(np.arange(16, dtype=np.uint64))
    assert a == b and not (a == MomRegister())
    assert "MomRegister" in repr(a)


# --- PackedAccumulator -------------------------------------------------------------

def test_acc_starts_clear():
    assert PackedAccumulator().bits == 0


def test_acc_lane_widths():
    acc = PackedAccumulator()
    assert len(acc.lanes(ElemType.B)) == 8
    assert len(acc.lanes(ElemType.H)) == 4
    assert len(acc.lanes(ElemType.W)) == 2


def test_madd_accumulates_products():
    acc = PackedAccumulator()
    a = packed.from_lanes(np.asarray([[100, -100, 3, 4]], dtype=np.int16))[0]
    acc.madd(a, a, ElemType.H)
    assert acc.lanes(ElemType.H) == [10000, 10000, 9, 16]
    acc.madd(a, a, ElemType.H, subtract=True)
    assert acc.lanes(ElemType.H) == [0, 0, 0, 0]


def test_acc_add_and_subtract():
    acc = PackedAccumulator()
    acc.acc_add(np.uint64(0x05), np.uint64(0x03), ElemType.B)
    assert acc.lanes(ElemType.B)[0] == 8
    acc.acc_add(np.uint64(0x00), np.uint64(0x03), ElemType.B, subtract=True)
    assert acc.lanes(ElemType.B)[0] == 5


def test_acc_sad_and_sqd():
    acc = PackedAccumulator()
    acc.acc_sad(np.uint64(10), np.uint64(3), ElemType.B)
    assert acc.lanes(ElemType.B)[0] == 7
    acc.acc_sqd(np.uint64(10), np.uint64(3), ElemType.B)
    assert acc.lanes(ElemType.B)[0] == 7 + 49


def test_lane_wraparound_two_complement():
    acc = PackedAccumulator()
    acc.acc_add(np.uint64(0), np.uint64(1), ElemType.B, subtract=True)
    assert acc.lanes(ElemType.B)[0] == -1
    assert acc.lanes(ElemType.B)[1] == 0    # neighbours untouched


def test_read_slice_reassembles_lane():
    acc = PackedAccumulator()
    value = 0x123456
    acc.scalar_add(value)     # lane 0 of B format = low 24 bits
    lo = acc.read_slice("low", ElemType.B) & 0xFF
    mid = acc.read_slice("mid", ElemType.B) & 0xFF
    hi = acc.read_slice("high", ElemType.B) & 0xFF
    assert lo | (mid << 8) | (hi << 16) == value


def test_read_saturated_rounds_and_clips():
    acc = PackedAccumulator()
    a = packed.from_lanes(np.asarray([[1000, -1000, 3, 0]], dtype=np.int16))[0]
    one = packed.from_lanes(np.asarray([[1, 1, 1, 1]], dtype=np.int16))[0]
    acc.madd(a, one, ElemType.H)
    word = acc.read_saturated(ElemType.H, signed=True, shift=2)
    lanes = packed.to_lanes(np.uint64(word), ElemType.H, signed=True)
    # (x + 2) >> 2 with arithmetic shift: 1000 -> 250, -1000 -> -250, 3 -> 1
    assert list(lanes) == [250, -250, 1, 0]


def test_read_saturated_clips_unsigned():
    acc = PackedAccumulator()
    acc.acc_add(np.uint64(0), np.uint64(1), ElemType.B, subtract=True)
    word = acc.read_saturated(ElemType.B, signed=False)
    assert word & 0xFF == 0      # -1 clips to 0


def test_read_saturated_negative_shift_rejected():
    with pytest.raises(ValueError):
        PackedAccumulator().read_saturated(ElemType.B, True, shift=-1)


def test_thirds_roundtrip():
    acc = PackedAccumulator()
    acc.write_third("low", 0x1111)
    acc.write_third("mid", 0x2222)
    acc.write_third("high", 0x3333)
    assert acc.read_third("low") == 0x1111
    assert acc.read_third("mid") == 0x2222
    assert acc.read_third("high") == 0x3333


def test_scalar_add_wraps_192_bits():
    acc = PackedAccumulator()
    acc.scalar_add((1 << 192) - 1)
    acc.scalar_add(1)
    assert acc.bits == 0


def test_scalar_total_signed():
    acc = PackedAccumulator()
    acc.scalar_add(-5)
    assert acc.scalar_total(signed=True) == -5
    assert acc.read_slice("low", ElemType.Q) == (1 << 64) - 5


@given(st.lists(st.integers(-1000, 1000), min_size=8, max_size=8))
@settings(max_examples=40)
def test_acc_matches_integer_reference(deltas):
    acc = PackedAccumulator()
    reference = [0] * 8
    for d in deltas:
        word = packed.from_lanes(
            np.asarray([[abs(d) % 256] * 8], dtype=np.int64))[0]
        acc.acc_sad(word, np.uint64(0), ElemType.B)
        for i in range(8):
            reference[i] += abs(d) % 256
    assert acc.lanes(ElemType.B) == reference


def test_acc_copy_and_eq():
    acc = PackedAccumulator(12345)
    assert acc.copy() == acc
    assert acc != PackedAccumulator(1)


# --- PipelinedAccumulation ------------------------------------------------------------

def test_mdmx_chain_serializes():
    model = PipelinedAccumulation(latency=4)
    assert model.mdmx_cycles(16) == 64


def test_mom_streams():
    model = PipelinedAccumulation(latency=4)
    assert model.mom_cycles(rows=16, instructions=1) == 20
    assert model.mom_cycles(rows=16, instructions=2) == 36


def test_mom_lanes_halve_streaming():
    wide = PipelinedAccumulation(latency=4, lanes=2)
    assert wide.mom_cycles(rows=16) == 12


def test_pipelined_validation():
    with pytest.raises(ValueError):
        PipelinedAccumulation(latency=0)
    with pytest.raises(ValueError):
        PipelinedAccumulation(latency=1).mdmx_cycles(-1)
    assert PipelinedAccumulation(latency=3).mom_cycles(0) == 0
