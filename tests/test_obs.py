"""Telemetry tests: metric accuracy, no-op discipline, span stitching,
phase profiling, and golden-digest parity with telemetry enabled.

The digest-parity tests re-run golden mini-grid coordinates with spans
and metrics fully enabled on every execution path (interpreted, batch,
jit via the pure-python shim, and the live service) and check the pinned
seed digests still come out: telemetry observes the simulator, it never
perturbs it.  The storm test holds the serving layer to the "stats must
answer while saturated" contract behind ``repro stats``.
"""

import threading
import time
import tracemalloc

import numpy
import pytest

from repro.cpu import Core, machine_config
from repro.exp import PointSpec, Session
from repro.exp.engine import built_kernel, execute_batch, execute_point
from repro.obs import (MemorySink, Obs, OBS_OFF, Registry, obs_from_env,
                       read_jsonl, render_prometheus)
from repro.obs.metrics import NULL_REGISTRY, _NULL_METRIC
from repro.obs.spans import NULL_SPAN
from repro.serve import Client

import test_golden_digest as golden
from test_serve import MINI, _golden_point, live_server

PHASES = {"decode", "step", "writeback"}


# --- metrics ------------------------------------------------------------------

def test_histogram_percentiles_track_numpy():
    """Log-bucket percentiles stay within the bucket-width error bound of
    exact (numpy) percentiles on a latency-shaped distribution."""
    import random

    rng = random.Random(42)
    samples = [rng.lognormvariate(-3.0, 1.0) for _ in range(5000)]
    hist = Registry().histogram("latency")
    for value in samples:
        hist.observe(value)
    assert hist.count == len(samples)
    assert hist.min == min(samples) and hist.max == max(samples)
    for q in (50, 90, 99):
        exact = float(numpy.percentile(samples, q))
        approx = hist.percentile(q)
        # 16 buckets/decade: geometric midpoints sit within ~7.5% of any
        # in-bucket value; leave headroom for rank rounding.
        assert abs(approx - exact) / exact < 0.12, (q, approx, exact)


def test_histogram_extremes_and_empty():
    hist = Registry().histogram("h")
    assert hist.percentile(50) is None and hist.mean is None
    hist.observe(1e-9)          # below lo -> underflow bucket
    hist.observe(1e9)           # above hi -> overflow bucket
    assert hist.count == 2
    # Percentiles clamp to observed extremes, never report outside them.
    for q in (50, 99):
        assert hist.min <= hist.percentile(q) <= hist.max


def test_render_prometheus_exposition():
    registry = Registry()
    registry.counter("points_simulated").inc(3)
    registry.gauge('server_shard_queue_depth{shard="0"}').set(2)
    hist = registry.histogram("lat")
    hist.observe(0.01)
    hist.observe(0.02)
    text = render_prometheus(registry)
    assert "# TYPE points_simulated counter" in text
    assert "points_simulated 3" in text
    assert "# TYPE server_shard_queue_depth gauge" in text
    assert 'server_shard_queue_depth{shard="0"} 2' in text
    assert "# TYPE lat summary" in text
    assert 'lat{quantile="0.5"}' in text
    assert "lat_count 2" in text
    assert text.endswith("\n")
    assert render_prometheus(NULL_REGISTRY) == ""


# --- the disabled path is free ------------------------------------------------

def test_disabled_singletons():
    assert NULL_REGISTRY.counter("a") is _NULL_METRIC
    assert NULL_REGISTRY.gauge("b") is _NULL_METRIC
    assert NULL_REGISTRY.histogram("c") is _NULL_METRIC
    assert NULL_REGISTRY.snapshot() == {}
    assert OBS_OFF.enabled is False
    assert OBS_OFF.metrics is NULL_REGISTRY
    assert OBS_OFF.tracer.span("x") is NULL_SPAN
    assert Obs.disabled() is OBS_OFF


def test_disabled_path_allocates_nothing():
    """The no-op registry/tracer retain nothing: a hot loop of disabled
    instrumentation leaves zero live allocations in repro.obs frames."""
    registry, tracer = OBS_OFF.metrics, OBS_OFF.tracer

    def burn():
        for _ in range(1000):
            registry.counter("points").inc()
            registry.histogram("h").observe(0.5)
            with tracer.span("s") as span:
                span.set(key=1)

    burn()                                  # warm caches first
    tracemalloc.start()
    try:
        before = tracemalloc.take_snapshot()
        burn()
        after = tracemalloc.take_snapshot()
    finally:
        tracemalloc.stop()
    grown = [stat for stat in after.compare_to(before, "lineno")
             if stat.size_diff > 0
             and any("obs" in frame.filename for frame in stat.traceback)]
    assert not grown, [str(stat) for stat in grown]


# --- spans --------------------------------------------------------------------

def test_jsonl_trace_roundtrip(tmp_path, monkeypatch):
    path = tmp_path / "spans.jsonl"
    monkeypatch.setenv("REPRO_OBS_TRACE", str(path))
    obs = obs_from_env()
    assert obs.enabled
    with obs.tracer.span("root") as root:
        with obs.tracer.span("child", parent=root):
            pass
    obs.sink.close()
    records = read_jsonl(path)
    # Children finish (and flush) before their parents.
    assert [r["name"] for r in records] == ["child", "root"]
    assert records[0]["parent"] == records[1]["span"]
    assert records[1]["parent"] is None
    assert all(r["dur"] >= 0 for r in records)


def test_spans_stitch_across_process_pool(tmp_path):
    """jobs=2 ships worker-side spans home: one trace, no dangling parents,
    and at least one record minted in a non-parent process."""
    obs = Obs.make()
    session = Session(tmp_path / "cache", obs=obs, batch=True)
    session.run(list(MINI), jobs=2)
    records = obs.sink.records
    assert records
    assert len({r["trace"] for r in records}) == 1
    ids = {r["span"] for r in records}
    dangling = [r["name"] for r in records
                if r["parent"] is not None and r["parent"] not in ids]
    assert not dangling
    names = {r["name"] for r in records}
    assert {"session.run", "cache.lookup", "trace.build",
            "sim.group", "phase.step", "cache.put"} <= names
    # Span ids are pid-prefixed, so stitched worker records are visible.
    pids = {r["span"].split("-")[0] for r in records}
    assert len(pids) >= 2


# --- phase profiling ----------------------------------------------------------

def test_phases_on_interpreted_core():
    built = built_kernel("idct", "mmx")
    core = Core(machine_config(2, "mmx"),
                golden.make_memsys("perfect", 2, "mmx"))
    phases = {}
    core.run(built.trace, jit=False, phases=phases)
    assert PHASES <= set(phases)
    assert all(v >= 0 for v in phases.values())
    assert phases["step"] > 0


def test_meta_phases_on_every_engine_path(monkeypatch):
    monkeypatch.setenv("REPRO_JIT_PUREPY", "1")
    monkeypatch.delenv("REPRO_NO_JIT", raising=False)
    point = PointSpec(kind="kernel", target="idct", isa="mom", way=2)

    interpreted = execute_point(point, jit=False)
    assert PHASES <= set(interpreted.meta["phases"])

    jitted = execute_point(point, jit=True)
    assert jitted.meta["jit"] is True
    assert PHASES <= set(jitted.meta["phases"])
    assert golden.result_digest(jitted) == golden.result_digest(interpreted)


def test_batch_meta_is_honest_about_shared_wall_clock():
    """S1: per-lane sim_seconds is an equal share, flagged as estimated,
    with the measured whole-pass wall-clock alongside."""
    group = [PointSpec(kind="kernel", target="idct", isa="mom", way=w)
             for w in (2, 4, 8)]
    results = execute_batch(group, jit=False)
    group_seconds = {r.meta["batch_group_seconds"] for r in results}
    assert len(group_seconds) == 1          # one measured pass, shared
    (shared,) = group_seconds
    assert shared > 0
    for result in results:
        meta = result.meta
        assert meta["sim_seconds_estimated"] is True
        # meta seconds are rounded to microsecond precision by the engine.
        assert meta["sim_seconds"] == pytest.approx(shared / len(group),
                                                    abs=1e-5)
        assert PHASES <= set(meta["phases"])
    assert sum(r.meta["sim_seconds"] for r in results) == \
        pytest.approx(shared, abs=1e-4)


# --- golden-digest parity with telemetry enabled ------------------------------

#: One coordinate per memory-model family, both kernels represented.
PARITY = (
    ("idct", "mmx", 2, "perfect"),
    ("idct", "mom", 8, "cache"),
    ("motion2", "mdmx", 8, "latency50"),
    ("motion2", "mom", 2, "vectorcache"),
)


@pytest.mark.parametrize("batch,jit", [
    (False, False),        # interpreted, per-point
    (True, False),         # batch lanes
    (True, True),          # jit kernel (pure-python shim where numba absent)
], ids=("interpreted", "batch", "jit"))
def test_digest_parity_with_telemetry_enabled(tmp_path, monkeypatch,
                                              batch, jit):
    if jit:
        monkeypatch.setenv("REPRO_JIT_PUREPY", "1")
        monkeypatch.delenv("REPRO_NO_JIT", raising=False)
    points = [_golden_point(*coord) for coord in PARITY]
    obs = Obs.make()
    session = Session(tmp_path / "cache", use_cache=False, obs=obs,
                      batch=batch, jit=jit)
    results = session.run(points)
    for coord, point in zip(PARITY, points):
        assert golden.result_digest(results[point]) == \
            golden.GOLDEN_DIGESTS[coord], coord
    assert obs.sink.records                 # telemetry actually observed


def test_served_digest_parity_with_telemetry_enabled(tmp_path, monkeypatch):
    """The fourth path: a live server with spans + metrics on still streams
    seed-digest answers, ships worker spans home, and serves metrics."""
    monkeypatch.setenv("REPRO_OBS", "1")
    points = [_golden_point(*coord) for coord in PARITY]
    with live_server(tmp_path) as server:
        with Client("127.0.0.1", server.port, timeout=120) as client:
            results = client.run(points)
            payload = client.metrics()
    for coord, point in zip(PARITY, points):
        assert golden.result_digest(results[point]) == \
            golden.GOLDEN_DIGESTS[coord], coord
    assert payload["metrics"]["submit_answer_seconds"]["count"] >= 1
    assert "server_shard_queue_depth" in payload["text"]
    records = server.obs.sink.records
    names = {r["name"] for r in records}
    assert {"serve.request", "serve.dispatch", "worker.sim",
            "serve.flush"} <= names
    # The four parity points are four distinct builds, so each simulates
    # as its own (possibly singleton) group inside a worker.
    assert names & {"sim.point", "sim.group"}
    ids = {r["span"] for r in records}
    assert not [r for r in records
                if r["parent"] is not None and r["parent"] not in ids]


# --- the service answers stats while saturated --------------------------------

def test_stats_and_metrics_answer_during_submit_storm(tmp_path):
    """S2/tentpole contract behind ``repro stats``: with a tiny in-flight
    budget and a storm of submitted points, a second connection's stats
    and metrics requests answer promptly instead of queueing behind the
    sweep."""
    storm = [PointSpec(kind="kernel", target=kernel, isa=isa, way=way)
             for kernel in ("idct", "motion2")
             for isa in ("alpha", "mmx", "mdmx", "mom")
             for way in (2, 4)]
    done = threading.Event()
    errors: list[BaseException] = []

    with live_server(tmp_path, workers=2, max_inflight=2) as server:
        def storm_client():
            try:
                with Client("127.0.0.1", server.port, timeout=300) as c:
                    c.run(storm)
            except BaseException as exc:     # noqa: BLE001 - reraised below
                errors.append(exc)
            finally:
                done.set()

        thread = threading.Thread(target=storm_client, daemon=True)
        thread.start()
        latencies = []
        stats = {}
        with Client("127.0.0.1", server.port, timeout=30) as control:
            while True:
                t0 = time.monotonic()
                stats = control.stats()
                payload = control.metrics()
                latencies.append(time.monotonic() - t0)
                if done.is_set() or len(latencies) >= 50:
                    break
                time.sleep(0.05)
        thread.join(300)

    assert not errors, errors
    assert latencies and max(latencies) < 5.0
    assert "shard_queue_depths" in stats
    assert {"worker_deaths", "worker_respawns",
            "worker_failed_keys"} <= set(stats)
    assert "server_inflight" in payload["text"]
