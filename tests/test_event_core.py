"""Edge-case tests for the event-driven scheduler.

Every test here is *differential*: it drives both engines --
:meth:`Core.run` (event-driven, cycle-skipping) and
:meth:`Core.run_reference` (the seed busy-wait loop) -- over a trace
engineered to hit one scheduler hazard, and requires the full
:class:`SimResult` (stall counters and memory statistics included) to be
equal.  A hypothesis fuzz closes the gaps between the hand-built cases.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import AlphaBuilder, MomBuilder
from repro.cpu import Core, machine_config
from repro.emulib.trace import DynInstr, Trace
from repro.isa.alpha import ALPHA
from repro.memsys import ConventionalHierarchy, MultiAddressHierarchy, PerfectMemory


def both_engines(trace, isa, way, memsys_factory=None, latency=1):
    """Run the same trace through both engines on fresh cores/memories."""
    cfg = machine_config(way, isa)
    if memsys_factory is None:
        def memsys_factory():
            return PerfectMemory(latency, cfg.mem_ports, cfg.mem_port_width)
    event = Core(cfg, memsys_factory()).run(trace)
    reference = Core(cfg, memsys_factory()).run_reference(trace)
    return event, reference


def assert_equivalent(trace, isa, way, memsys_factory=None, latency=1):
    event, reference = both_engines(trace, isa, way, memsys_factory, latency)
    assert event == reference, (
        f"engines diverged: event={event.to_dict()} "
        f"reference={reference.to_dict()}")
    return event


# --- mispredict redirect vs cycle skip -------------------------------------------

def test_mispredict_redirect_with_empty_ready_queue():
    """The cycle skip must not jump past a pending fetch redirect.

    A mispredicted branch at the end of a long serial multiply chain
    leaves the scheduler with an empty ready queue while fetch is blocked
    on ``next_fetch_cycle``; the skip must land exactly on the redirect
    cycle so the post-branch instructions fetch when the seed core fetches
    them.
    """
    b = AlphaBuilder()
    site = b.site()
    x = b.ireg(0)
    for round_ in range(8):
        for _ in range(4):
            b.mulq(x, x, x)           # serial: drains the ready queue
        b.li(x, round_ % 2)
        b.bne(x, site)                # alternating: mispredicts repeatedly
        b.addi(x, x, 1)               # post-redirect refill work
    result = assert_equivalent(b.trace, "alpha", 4)
    assert result.branch_mispredicts > 0
    assert result.fetch_stall_cycles > 0


def test_mispredicted_final_branch_terminates():
    """A mispredicted *last* instruction: the redirect rewrites the fetch
    horizon with nothing left to fetch; the run must still terminate with
    the reference cycle count."""
    b = AlphaBuilder()
    site = b.site()
    x = b.ireg(1)
    b.bne(x, site)                    # predicted weakly-taken... and taken
    b.li(x, 0)
    b.bne(x, site)                    # not taken: mispredicted, trace ends
    assert_equivalent(b.trace, "alpha", 2)


# --- non-pipelined divide occupancy ----------------------------------------------

def _divq(dst, a, b_):
    return DynInstr(ALPHA["divq"], srcs=(a.encoded, b_.encoded),
                    dsts=(dst.encoded,))


def test_independent_divides_serialize_on_one_unit():
    """divq occupies its unit for the full 30-cycle latency; independent
    divides on a 1-complex-unit machine must queue, and the parked-retry
    horizon must wake each exactly when the unit frees."""
    b = AlphaBuilder()
    regs = [b.ireg(i + 1) for i in range(4)]
    for i in range(4):
        b.trace.append(_divq(regs[i], regs[i], regs[i]))
    result = assert_equivalent(b.trace, "alpha", 1)
    # 4 divides x 30-cycle occupancy on one unit: >= 120 cycles.
    assert result.cycles >= 120


def test_divide_blocks_younger_integer_ops():
    """Younger simple ops behind a divide contend for the same complex
    unit at width 1 (the 1-way machine has a single int unit)."""
    b = AlphaBuilder()
    x, y = b.ireg(7), b.ireg(3)
    b.trace.append(_divq(x, x, y))
    for _ in range(10):
        b.addi(y, y, 1)
    result = assert_equivalent(b.trace, "alpha", 1)
    assert result.cycles > 30


def test_dependent_divide_chain():
    b = AlphaBuilder()
    x = b.ireg(1 << 40)
    y = b.ireg(2)
    for _ in range(3):
        b.trace.append(_divq(x, x, y))
    result = assert_equivalent(b.trace, "alpha", 4)
    assert result.cycles >= 3 * 30


# --- LSQ-full dispatch stalls -----------------------------------------------------

def test_lsq_full_dispatch_stall():
    """With lsq_size=4 (1-way machine) and 50-cycle loads, dispatch blocks
    on a full LSQ; the blocked span ends at a commit, which only the
    commit-horizon wakeup can trigger."""
    def build():
        b = AlphaBuilder()
        base = b.ireg(b.mem.alloc(1024))
        regs = [b.ireg() for _ in range(4)]
        for i in range(24):
            b.ldq(regs[i % 4], base, 8 * (i % 16))
        return b
    result = assert_equivalent(build().trace, "alpha", 1, latency=50)
    # 24 loads, at most 4 in flight, 50-cycle latency: LSQ recycling
    # dominates the schedule.
    assert result.cycles > 24 * 4


def test_lsq_full_with_trailing_alu_work():
    b = AlphaBuilder()
    base = b.ireg(b.mem.alloc(1024))
    v = b.ireg()
    acc = b.ireg(0)
    for i in range(16):
        b.ldq(v, base, 8 * i)
        b.addq(acc, acc, v)
    assert_equivalent(b.trace, "alpha", 1, latency=50)


# --- rename-stall accounting across skipped spans ---------------------------------

def test_rename_stall_cycles_counted_through_skips():
    """The MOM matrix file has only 4 spare physical rows x 16; a burst of
    matrix writes rename-blocks dispatch for long spans that the event
    core skips -- the skipped cycles must still count as rename stalls."""
    b = MomBuilder()
    regs = [b.mreg() for _ in range(8)]
    b.setvli(16)
    for _ in range(12):
        for r in regs:
            b.mommov(r, regs[0])
    result = assert_equivalent(b.trace, "mom", 8)
    assert result.rename_stall_events > 0


# --- structural-hint exactness on the cache hierarchies ---------------------------

def test_unaligned_access_retry_cadence():
    """Unaligned scalar accesses count a split on *every* retry attempt,
    so the hierarchy's hint must refuse to skip them; the split counter is
    part of mem_stats and therefore of the differential equality."""
    b = AlphaBuilder()
    base = b.ireg(b.mem.alloc(4096) + 3)      # misaligned base address
    regs = [b.ireg() for _ in range(4)]
    for i in range(32):
        b.ldq(regs[i % 4], base, 8 * (i % 8))
    result = assert_equivalent(b.trace, "alpha", 2,
                               memsys_factory=lambda: ConventionalHierarchy(2))
    assert result.mem_stats["unaligned_splits"] > 0


def test_mom_vector_port_contention():
    """Matrix accesses reserve every port; back-to-back vector loads park
    on the all-ports-free horizon."""
    b = MomBuilder()
    addr = b.mem.alloc_array(np.zeros(4096, dtype=np.uint8))
    base, stride = b.ireg(addr), b.ireg(16)
    b.setvli(16)
    regs = [b.mreg() for _ in range(4)]
    for _ in range(4):
        for r in regs:
            b.momldq(r, base, stride)
    assert_equivalent(b.trace, "mom", 4,
                      memsys_factory=lambda: MultiAddressHierarchy(4))


# --- randomized differential fuzz -------------------------------------------------

@given(st.integers(0, 2 ** 32 - 1), st.sampled_from([1, 2, 4, 8]),
       st.sampled_from([1, 50]))
@settings(max_examples=25, deadline=None)
def test_random_traces_match_reference(seed, way, latency):
    import random
    rng = random.Random(seed)
    b = AlphaBuilder()
    base = b.ireg(b.mem.alloc(4096))
    regs = [b.ireg(i) for i in range(6)]
    site = b.site()
    for _ in range(rng.randint(10, 120)):
        k = rng.randrange(7)
        r, r2 = regs[rng.randrange(6)], regs[rng.randrange(6)]
        if k == 0:
            b.addi(r, r2, 1)
        elif k == 1:
            b.mulq(r, r, r2)
        elif k == 2:
            b.ldq(r, base, rng.randrange(0, 512))
        elif k == 3:
            b.stq(r, base, rng.randrange(0, 512))
        elif k == 4:
            b.li(r, rng.randrange(2))
            b.bne(r, site)
        elif k == 5:
            b.trace.append(_divq(r, r, r2))
        else:
            b.addq(r, r, r2)
    assert_equivalent(b.trace, "alpha", way, latency=latency)


# --- empty and degenerate traces --------------------------------------------------

def test_empty_trace():
    event, reference = both_engines(Trace("alpha"), "alpha", 4)
    assert event == reference
    assert event.cycles == 0


def test_single_nop_class_instruction():
    b = AlphaBuilder()
    x = b.ireg(0)
    b.addi(x, x, 1)
    assert_equivalent(b.trace, "alpha", 1)
