"""Golden differential test: the event-driven core is cycle-exact to the seed.

The digests below were captured from the *seed* per-cycle busy-wait core
(commit 950ede5's ``Core.run``) over a representative mini-grid: two
kernels x all four ISAs x 2/8-way x {perfect 1-cycle, perfect 50-cycle,
realistic cache} memory, plus the vector-cache and collapsing-buffer
hierarchies for MOM.  Each digest hashes every deterministic
:class:`~repro.cpu.core.SimResult` field -- cycles, instruction and
operation counts, branch/BTB statistics, fetch- and rename-stall counters
and the full memory-system statistics dict -- so the event-driven
scheduler must reproduce the seed model bit-for-bit, stall cadence and
all, not merely approximate it.

If a deliberate timing-model change invalidates these values, re-capture
them with ``python -m tests.test_golden_digest`` and update the table in
the same commit as the model change.
"""

import hashlib
import json

import pytest

from repro.cpu import Core, machine_config
from repro.exp.engine import built_kernel
from repro.memsys import (CollapsingBufferHierarchy, ConventionalHierarchy,
                          MultiAddressHierarchy, PerfectMemory,
                          VectorCacheHierarchy)

KERNELS = ("idct", "motion2")
ISAS = ("alpha", "mmx", "mdmx", "mom")
WAYS = (2, 8)

#: The realistic cache model each ISA runs on: the conventional hierarchy
#: serves the scalar/SIMD ISAs (their accesses are all VL=1); MOM's matrix
#: accesses need the decoupled multi-address scheme.
CACHE_MODEL = {
    "alpha": ConventionalHierarchy,
    "mmx": ConventionalHierarchy,
    "mdmx": ConventionalHierarchy,
    "mom": MultiAddressHierarchy,
}


def make_memsys(label: str, way: int, isa: str):
    cfg = machine_config(way, isa)
    if label == "perfect":
        return PerfectMemory(1, cfg.mem_ports, cfg.mem_port_width)
    if label == "latency50":
        return PerfectMemory(50, cfg.mem_ports, cfg.mem_port_width)
    if label == "cache":
        return CACHE_MODEL[isa](way)
    if label == "vectorcache":
        return VectorCacheHierarchy(way)
    if label == "collapsing":
        return CollapsingBufferHierarchy(way)
    raise ValueError(label)


def result_digest(result) -> str:
    """Digest of every deterministic SimResult field (meta is wall-clock)."""
    data = result.to_dict()
    data.pop("meta", None)
    canon = json.dumps(data, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(canon.encode()).hexdigest()[:16]


def grid_points():
    for kernel in KERNELS:
        for isa in ISAS:
            memories = ["perfect", "latency50", "cache"]
            if isa == "mom":
                memories += ["vectorcache", "collapsing"]
            for way in WAYS:
                for label in memories:
                    yield kernel, isa, way, label


#: Captured from the seed busy-wait core -- see the module docstring.
GOLDEN_DIGESTS = {
    ('idct', 'alpha', 2, 'perfect'): '559f2403b41f08cb',
    ('idct', 'alpha', 2, 'latency50'): '77dee657f47d1dd7',
    ('idct', 'alpha', 2, 'cache'): '141f20b4ee4283c7',
    ('idct', 'alpha', 8, 'perfect'): 'dc4d7182159805d0',
    ('idct', 'alpha', 8, 'latency50'): 'ec03681bcebd084e',
    ('idct', 'alpha', 8, 'cache'): 'bf9713d0dfdb20c6',
    ('idct', 'mmx', 2, 'perfect'): 'cd6ddbbabcb7fb7c',
    ('idct', 'mmx', 2, 'latency50'): 'd6a410a30fab7d8f',
    ('idct', 'mmx', 2, 'cache'): '5a797f32a7a4840b',
    ('idct', 'mmx', 8, 'perfect'): '795db29d1a4c444c',
    ('idct', 'mmx', 8, 'latency50'): 'd9a1b3bd180b2430',
    ('idct', 'mmx', 8, 'cache'): 'aba72c67f7e60979',
    ('idct', 'mdmx', 2, 'perfect'): 'cd6ddbbabcb7fb7c',
    ('idct', 'mdmx', 2, 'latency50'): 'd6a410a30fab7d8f',
    ('idct', 'mdmx', 2, 'cache'): '5a797f32a7a4840b',
    ('idct', 'mdmx', 8, 'perfect'): '3e541f82b78b0e29',
    ('idct', 'mdmx', 8, 'latency50'): '00d4b6ed64c3970c',
    ('idct', 'mdmx', 8, 'cache'): 'aab8d4a1e7559aff',
    ('idct', 'mom', 2, 'perfect'): '1291265249d87f89',
    ('idct', 'mom', 2, 'latency50'): '2712ed2503c61f2d',
    ('idct', 'mom', 2, 'cache'): 'e5c3e2acdbbefa3c',
    ('idct', 'mom', 2, 'vectorcache'): 'd09d2f10ab521296',
    ('idct', 'mom', 2, 'collapsing'): 'ba07b1547d2fc800',
    ('idct', 'mom', 8, 'perfect'): 'b259e5230ea713c0',
    ('idct', 'mom', 8, 'latency50'): 'd85692f7a364c4f9',
    ('idct', 'mom', 8, 'cache'): 'dcabc86fb00951ca',
    ('idct', 'mom', 8, 'vectorcache'): 'a2781f24b596d4b4',
    ('idct', 'mom', 8, 'collapsing'): '53f7afe933acd5ae',
    ('motion2', 'alpha', 2, 'perfect'): 'd7683771a810e5ef',
    ('motion2', 'alpha', 2, 'latency50'): '21a7364c4f38f1fd',
    ('motion2', 'alpha', 2, 'cache'): 'c39302c802b400ca',
    ('motion2', 'alpha', 8, 'perfect'): '2bca430d35a79ae2',
    ('motion2', 'alpha', 8, 'latency50'): '05446a8c2c931c27',
    ('motion2', 'alpha', 8, 'cache'): '7fa88b7523fc78f6',
    ('motion2', 'mmx', 2, 'perfect'): 'c5b47daba2ed47f7',
    ('motion2', 'mmx', 2, 'latency50'): 'a8715d4d5b45cacf',
    ('motion2', 'mmx', 2, 'cache'): '2276b7dc7552569a',
    ('motion2', 'mmx', 8, 'perfect'): '8678eb3e6182900b',
    ('motion2', 'mmx', 8, 'latency50'): 'fb639a739038635d',
    ('motion2', 'mmx', 8, 'cache'): 'b57256a9b764e40f',
    ('motion2', 'mdmx', 2, 'perfect'): '31a87cb02f79862d',
    ('motion2', 'mdmx', 2, 'latency50'): 'dfc195f6dec2206c',
    ('motion2', 'mdmx', 2, 'cache'): '8a3ea5800a3ad2aa',
    ('motion2', 'mdmx', 8, 'perfect'): '3fa8375dc329440a',
    ('motion2', 'mdmx', 8, 'latency50'): '5073a8a9796dc84f',
    ('motion2', 'mdmx', 8, 'cache'): 'e0593649af8a9a6e',
    ('motion2', 'mom', 2, 'perfect'): '00e6159b8bcddf26',
    ('motion2', 'mom', 2, 'latency50'): 'fba0830ecf79d402',
    ('motion2', 'mom', 2, 'cache'): 'c60a6ecb2614e565',
    ('motion2', 'mom', 2, 'vectorcache'): 'aca490dea7d81658',
    ('motion2', 'mom', 2, 'collapsing'): '526787732e059c40',
    ('motion2', 'mom', 8, 'perfect'): '5279ec217a651d13',
    ('motion2', 'mom', 8, 'latency50'): 'e0925c3ce6ea6d02',
    ('motion2', 'mom', 8, 'cache'): '958b3d4708a19bab',
    ('motion2', 'mom', 8, 'vectorcache'): 'b64b6a47261ddf83',
    ('motion2', 'mom', 8, 'collapsing'): '538d644c6b27629f',
}


def test_grid_matches_digest_table():
    """Every mini-grid point has a pinned digest, and nothing is orphaned."""
    assert set(grid_points()) == set(GOLDEN_DIGESTS)


@pytest.mark.parametrize("kernel,isa,way,memory", list(grid_points()),
                         ids=lambda v: str(v))
def test_event_core_matches_seed_digest(kernel, isa, way, memory):
    built = built_kernel(kernel, isa)
    core = Core(machine_config(way, isa), make_memsys(memory, way, isa))
    result = core.run(built.trace)
    assert result_digest(result) == GOLDEN_DIGESTS[(kernel, isa, way, memory)]


@pytest.mark.parametrize("kernel,isa,way,memory", [
    ("idct", "mom", 8, "vectorcache"),
    ("idct", "alpha", 2, "cache"),
    ("motion2", "mmx", 8, "cache"),
    ("motion2", "mom", 2, "collapsing"),
    ("idct", "mdmx", 8, "latency50"),
], ids=lambda v: str(v))
def test_streaming_consume_path_matches_seed_digest(monkeypatch, kernel,
                                                    isa, way, memory):
    """The columnar streaming path (TimingRecords consumed chunk by chunk,
    no materialized DynInstr list -- the frame-scale route) reproduces the
    seed digests bit for bit, across every memory-model family."""
    monkeypatch.setattr(Core, "STREAM_THRESHOLD", 0)
    built = built_kernel(kernel, isa)
    built.trace.invalidate_summary()        # force streaming, not the cache
    core = Core(machine_config(way, isa), make_memsys(memory, way, isa))
    result = core.run(built.trace)
    assert result_digest(result) == GOLDEN_DIGESTS[(kernel, isa, way, memory)]


def test_reference_core_still_matches_seed_digest():
    """The retained busy-wait oracle reproduces the seed too (spot check)."""
    for point in (("idct", "mom", 8, "cache"),
                  ("motion2", "alpha", 2, "perfect")):
        kernel, isa, way, memory = point
        built = built_kernel(kernel, isa)
        core = Core(machine_config(way, isa), make_memsys(memory, way, isa))
        result = core.run_reference(built.trace)
        assert result_digest(result) == GOLDEN_DIGESTS[point]


def _recapture():     # pragma: no cover - maintenance helper
    print("GOLDEN_DIGESTS = {")
    for kernel, isa, way, memory in grid_points():
        built = built_kernel(kernel, isa)
        core = Core(machine_config(way, isa), make_memsys(memory, way, isa))
        digest = result_digest(core.run(built.trace))
        print(f"    {(kernel, isa, way, memory)!r}: {digest!r},")
    print("}")


if __name__ == "__main__":     # pragma: no cover
    _recapture()
