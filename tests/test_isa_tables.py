"""The ISA tables must match the paper's reported opcode counts exactly."""

import pytest

from repro.core.mom_isa import ACC_BITS, MATRIX_ROWS, MOM, ROW_BITS
from repro.isa.alpha import ALPHA
from repro.isa.mdmx import MDMX
from repro.isa.mmx import MMX
from repro.isa.model import ElemType, InstrClass, IsaTable, Opcode


def test_paper_opcode_counts():
    """Section 3.1: 67 MMX, 88 MDMX, 121 MOM instructions."""
    assert len(MMX) == 67
    assert len(MDMX) == 88
    assert len(MOM) == 121


def test_mom_register_geometry():
    """Section 2.2: 16 words of 64 bits; 192-bit accumulators."""
    assert MATRIX_ROWS == 16
    assert ROW_BITS == 64
    assert ACC_BITS == 192


@pytest.mark.parametrize("table", [ALPHA, MMX, MDMX, MOM])
def test_all_opcodes_well_formed(table):
    for op in table:
        assert op.isa == table.name
        assert op.latency >= 1
        assert isinstance(op.iclass, InstrClass)


@pytest.mark.parametrize("table", [ALPHA, MMX, MDMX, MOM])
def test_mnemonics_unique(table):
    names = [op.name for op in table]
    assert len(names) == len(set(names))


def test_duplicate_opcode_rejected():
    t = IsaTable("toy")
    t.add(Opcode(name="foo", isa="toy", iclass=InstrClass.INT_SIMPLE))
    with pytest.raises(ValueError):
        t.add(Opcode(name="foo", isa="toy", iclass=InstrClass.INT_SIMPLE))


def test_wrong_isa_rejected():
    t = IsaTable("toy")
    with pytest.raises(ValueError):
        t.add(Opcode(name="foo", isa="other", iclass=InstrClass.INT_SIMPLE))


def test_negative_latency_rejected():
    with pytest.raises(ValueError):
        Opcode(name="x", isa="t", iclass=InstrClass.INT_SIMPLE, latency=-1)


def test_empty_name_rejected():
    with pytest.raises(ValueError):
        Opcode(name="", isa="t", iclass=InstrClass.INT_SIMPLE)


def test_mdmx_shares_packed_subset_with_mmx():
    """MDMX = MMX packed ops (minus scalar reductions) + accumulators."""
    mmx_names = {op.name for op in MMX}
    shared = [op for op in MDMX if op.name in mmx_names]
    assert len(shared) == 60     # 63 shared minus 3 renamed memory ops
    for op in shared:
        assert MMX[op.name].iclass == op.iclass
        assert MMX[op.name].latency == op.latency


def test_mdmx_drops_scalar_reductions():
    for name in ("psadb", "psumb", "psumh", "psumw"):
        assert name in MMX
        assert name not in MDMX


def test_mdmx_accumulator_ops_marked():
    accs = [op for op in MDMX if op.reads_acc or op.writes_acc]
    assert len(accs) == 25
    assert "pmaddah" in MDMX and MDMX["pmaddah"].writes_acc


def test_mom_vectorizes_mdmx():
    """Most MOM opcodes are vector versions of MDMX ones (Section 2.2)."""
    mdmx_names = {op.name for op in MDMX}
    inherited = [op for op in MOM if op.name in mdmx_names]
    assert len(inherited) == 79


def test_mom_has_paper_categories():
    cats = MOM.categories()
    assert cats["memory"] == 8
    assert cats["matrix"] == 11
    for name in ("momldq", "momstq", "setvl", "setvli", "readvl",
                 "momtransh", "mommpvh", "mommsqdb", "mommsadb"):
        assert name in MOM


def test_mom_memory_ops_are_media_memory():
    assert MOM["momldq"].iclass == InstrClass.MED_LOAD
    assert MOM["momstq"].iclass == InstrClass.MED_STORE


def test_vl_ops_use_integer_pool_class():
    """The VL register renames through the integer pool (Section 3.2)."""
    assert MOM["setvl"].iclass == InstrClass.INT_SIMPLE
    assert MOM["setvli"].iclass == InstrClass.INT_SIMPLE


def test_alpha_has_no_media_ops():
    for op in ALPHA:
        assert not op.iclass.is_media


def test_instr_class_predicates():
    assert InstrClass.LOAD.is_memory and InstrClass.LOAD.is_load
    assert InstrClass.MED_STORE.is_memory and InstrClass.MED_STORE.is_store
    assert InstrClass.MED_STORE.is_media
    assert InstrClass.BRANCH.is_control and InstrClass.JUMP.is_control
    assert not InstrClass.INT_SIMPLE.is_memory


def test_elem_type_geometry():
    assert ElemType.B.lanes == 8 and ElemType.B.bits == 8
    assert ElemType.H.lanes == 4 and ElemType.H.bits == 16
    assert ElemType.W.lanes == 2 and ElemType.W.bits == 32
    assert ElemType.Q.lanes == 1 and ElemType.Q.bits == 64


def test_category_lookup():
    shifts = MMX.by_category("shift")
    assert len(shifts) == 8
    assert all(op.category == "shift" for op in shifts)


def test_table_lookup_interfaces():
    assert "paddb" in MMX
    assert MMX["paddb"].elem == ElemType.B
    with pytest.raises(KeyError):
        MMX["no_such_op"]
