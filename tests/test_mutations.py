"""Mutation harness: every seeded defect is caught by the intended pass.

Each test plants one known-bad artifact -- a corrupted IR, a corrupted
lowered stream, or a corrupted ``cpu/jit.py`` source -- and asserts the
static verification layer reports it under the expected pass/rule.  The
companion guarantee (zero findings on the shipped kernel x ISA grid,
i.e. no false positives) lives in ``test_analysis.py``.

IR mutants bypass ``__post_init__`` with ``object.__setattr__`` on deep
copies, exactly the route a buggy future IR producer would take; stream
mutants wrap a genuinely-built kernel behind a proxy whose trace has one
instruction edited, inserted or dropped.
"""

import copy

from repro.analysis import check_ir, check_ranges, check_stream, lint_jit
from repro.analysis.jitlint import default_source
from repro.analysis.streamcheck import _extents
from repro.emulib.trace import DynInstr
from repro.kernels import KERNELS
from repro.vc import COMPILED, compile_kernel
from repro.vc.ir import (Buffer, Const, Load, LoopKernel, SatU8, Shr, Sub,
                         Mul)


# --- plumbing ---------------------------------------------------------------

def _built(name, isa):
    spec = KERNELS[name]
    record = COMPILED[name]
    workload = spec.make_workload(1)
    return compile_kernel(record.ir, isa, record.bind(workload),
                          record.output_key)


class _Mutant:
    """A builder proxy whose trace has been tampered with."""

    def __init__(self, builder, trace):
        self._builder = builder
        self.trace = trace

    def __getattr__(self, name):
        return getattr(self._builder, name)


def _clone(instr, **over):
    fields = dict(op=instr.op, srcs=instr.srcs, dsts=instr.dsts,
                  addr=instr.addr, nbytes=instr.nbytes, stride=instr.stride,
                  vl=instr.vl, taken=instr.taken, site=instr.site)
    fields.update(over)
    return DynInstr(**fields)


def _rules(findings):
    return {(f.pass_name, f.rule) for f in findings}


def _find(trace, predicate):
    for i, instr in enumerate(trace):
        if predicate(instr):
            return i
    raise AssertionError("mutation anchor not found in trace")


def _nodes(expr, kind):
    out = []
    stack = [expr]
    while stack:
        node = stack.pop()
        if isinstance(node, kind):
            out.append(node)
        stack.extend(v for v in vars(node).values()
                     if hasattr(v, "children"))
    return out


# --- IR mutations (caught by the ir pass) -----------------------------------

def test_mutation_const_out_of_domain():
    ir = copy.deepcopy(COMPILED["blend"].ir)
    object.__setattr__(_nodes(ir.expr, Const)[0], "value", 70000)
    assert ("ir", "const-range") in _rules(check_ir(ir))


def test_mutation_bad_tile_shape():
    ir = copy.deepcopy(COMPILED["blend"].ir)
    object.__setattr__(ir, "cols", 12)
    assert ("ir", "tile-shape") in _rules(check_ir(ir))


def test_mutation_identical_reduction_operands():
    ir = copy.deepcopy(COMPILED["ssd"].ir)
    sub = _nodes(ir.expr, Sub)[0]
    object.__setattr__(sub, "b", copy.deepcopy(sub.a))
    assert ("ir", "reduce-shape") in _rules(check_ir(ir))


def test_mutation_shift_count_out_of_range():
    ir = copy.deepcopy(COMPILED["blend"].ir)
    object.__setattr__(_nodes(ir.expr, Shr)[0], "count", 17)
    assert ("ir", "shift-count") in _rules(check_ir(ir))


# --- range mutations (caught by the saturation-range pass) ------------------

def test_mutation_dropped_saturation():
    ir = copy.deepcopy(COMPILED["blend"].ir)
    assert isinstance(ir.expr, SatU8)
    # Stripping SatU8 leaves a half-domain root: structurally invalid.
    object.__setattr__(ir, "expr", ir.expr.a)
    assert ("ir", "unsaturated-root") in _rules(check_ir(ir))
    # Stripping the scaling shift as well makes the root's interval
    # provably escape u8: the range proof fails on every ISA.
    object.__setattr__(ir, "expr", ir.expr.a)
    for isa in ("alpha", "mmx"):
        findings, _ = check_ranges(ir, None, isa)
        assert ("range", "root-range") in _rules(findings), isa


def test_mutation_wrapping_multiply_constant():
    ir = copy.deepcopy(COMPILED["blend"].ir)
    mul = _nodes(ir.expr, Mul)[0]
    object.__setattr__(_nodes(mul, Const)[0], "value", 400)
    findings, checkpoints = check_ranges(ir, None, "mmx")
    assert ("range", "half-width") in _rules(findings)
    assert any(c["status"] == "violated" for c in checkpoints)


def test_mutation_scalar_table_escape():
    # SatU8 over an interval dipping below -TABLE_BIAS: packushb absorbs
    # it, but the scalar lookup table does not.
    ir = LoopKernel(
        name="mutant", rows=8, cols=8,
        buffers=(Buffer("src"), Buffer("out", out=True)),
        expr=SatU8(Sub(Load("src"), Const(300))),
    )
    scalar, _ = check_ranges(ir, None, "alpha")
    packed, _ = check_ranges(ir, None, "mmx")
    assert ("range", "sat-table") in _rules(scalar)
    assert ("range", "sat-table") not in _rules(packed)


def test_mutation_unsaturated_store():
    built = _built("blend", "mmx")
    trace = list(built.builder.trace)
    pack_at = _find(trace, lambda x: x.op.name == "packushb")
    donor = trace[_find(trace, lambda x: x.op.name == "paddh")]
    trace[pack_at] = _clone(trace[pack_at], op=donor.op)
    findings = check_stream(_Mutant(built.builder, trace), "blend", "mmx")
    assert ("range", "unsaturated-store") in _rules(findings)


# --- stream mutations (caught by the dataflow pass) -------------------------

def test_mutation_vl_corruption():
    built = _built("blend", "mom")
    trace = list(built.builder.trace)
    at = _find(trace, lambda x: x.vl > 1)
    wild = trace[:]
    wild[at] = _clone(wild[at], vl=17)
    findings = check_stream(_Mutant(built.builder, wild), "blend", "mom")
    assert ("dataflow", "vl-range") in _rules(findings)

    short = trace[:]
    short[at] = _clone(short[at], vl=trace[at].vl - 1)
    findings = check_stream(_Mutant(built.builder, short), "blend", "mom")
    assert ("dataflow", "vl-mismatch") in _rules(findings)


def test_mutation_off_by_one_tile():
    built = _built("blend", "mmx")
    trace = list(built.builder.trace)
    extents = _extents(built.builder)
    src_end = next(end for name, _, end in extents if name == "src0")
    at = _find(trace, lambda x: x.op.iclass.is_memory and x.addr is not None)
    # Slide the access so it straddles the end of its buffer.
    trace[at] = _clone(trace[at], addr=src_end - trace[at].nbytes // 2)
    findings = check_stream(_Mutant(built.builder, trace), "blend", "mmx")
    assert ("dataflow", "oob") in _rules(findings)


def test_mutation_wild_pointer():
    built = _built("blend", "mmx")
    trace = list(built.builder.trace)
    at = _find(trace, lambda x: x.op.iclass.is_memory and x.addr is not None)
    trace[at] = _clone(trace[at], addr=built.builder.mem._brk + 4096)
    findings = check_stream(_Mutant(built.builder, trace), "blend", "mmx")
    assert ("dataflow", "oob") in _rules(findings)


def test_mutation_dropped_clracc():
    built = _built("ssd", "mdmx")
    trace = list(built.builder.trace)
    clears = [i for i, x in enumerate(trace) if x.op.name == "clracc"]
    assert len(clears) >= 8, "need at least two instances of clears"
    del trace[clears[5]]        # a mid-stream clear, not the first group
    findings = check_stream(_Mutant(built.builder, trace), "ssd", "mdmx")
    assert ("dataflow", "acc-stale") in _rules(findings)


def test_mutation_dropped_accumulate():
    built = _built("ssd", "mdmx")
    trace = list(built.builder.trace)
    at = _find(trace, lambda x: x.dsts and x.dsts[0] in x.srcs
               and x.op.name.startswith("pacc"))
    del trace[at]
    findings = check_stream(_Mutant(built.builder, trace), "ssd", "mdmx")
    assert ("dataflow", "acc-count") in _rules(findings)


def test_mutation_removed_zeroing_def():
    built = _built("ssd", "mmx")
    trace = list(built.builder.trace)
    at = _find(trace, lambda x: x.op.name == "pxor")
    del trace[at]
    findings = check_stream(_Mutant(built.builder, trace), "ssd", "mmx")
    assert ("dataflow", "use-before-def") in _rules(findings)


def test_mutation_swapped_operand():
    built = _built("blend", "mmx")
    trace = list(built.builder.trace)
    at = _find(trace, lambda x: len(x.srcs) >= 2 and not x.dsts[0] in x.srcs
               if x.dsts else False)
    instr = trace[at]
    phantom = (instr.srcs[0] & ~0xFF) | 0x3F      # same pool, never written
    trace[at] = _clone(instr, srcs=(phantom,) + instr.srcs[1:])
    findings = check_stream(_Mutant(built.builder, trace), "blend", "mmx")
    assert ("dataflow", "use-before-def") in _rules(findings)


def test_mutation_injected_dead_write():
    built = _built("blend", "mmx")
    trace = list(built.builder.trace)
    # Duplicate a load: the first of the pair is overwritten unread.
    at = _find(trace, lambda x: x.op.name == "mmx_ldq")
    trace.insert(at, _clone(trace[at]))
    findings = check_stream(_Mutant(built.builder, trace), "blend", "mmx")
    assert ("dataflow", "dead-write") in _rules(findings)


# --- jit-subset mutations (caught by the jit linter) ------------------------

_ANCHOR = "    width = cfg[_C_WIDTH]"


def _mutate_jit(insert=None, replace=None):
    source, _ = default_source()
    if insert is not None:
        assert _ANCHOR in source
        source = source.replace(_ANCHOR, insert + "\n" + _ANCHOR, 1)
    if replace is not None:
        old, new = replace
        assert old in source
        source = source.replace(old, new, 1)
    return lint_jit(source)


def test_mutation_jit_dict_literal():
    findings = _mutate_jit(insert="    _bad = {}")
    assert ("jit-subset", "forbidden-construct") in _rules(findings)


def test_mutation_jit_float_constant():
    findings = _mutate_jit(insert="    _bad = 0.5")
    assert ("jit-subset", "float-constant") in _rules(findings)


def test_mutation_jit_modulo():
    findings = _mutate_jit(insert="    _bad = 7 % 3")
    assert ("jit-subset", "forbidden-op") in _rules(findings)


def test_mutation_jit_nested_function():
    findings = _mutate_jit(
        insert="    def _inner():\n        return 0")
    assert ("jit-subset", "forbidden-construct") in _rules(findings)


def test_mutation_jit_forbidden_call():
    findings = _mutate_jit(insert="    _bad = sorted(cfg)")
    assert ("jit-subset", "forbidden-call") in _rules(findings)


def test_mutation_jit_removed_rewrap():
    findings = _mutate_jit(replace=(
        "_step_lane = _numba.njit(cache=True)(_step_lane)", "pass"))
    assert ("jit-subset", "missing-shim") in _rules(findings)


def test_mutation_jit_unknown_name():
    findings = _mutate_jit(insert="    _bad = mystery_global + 1")
    assert ("jit-subset", "unresolved-name") in _rules(findings)
