"""Tests for the memory system: caches, MSHRs, write buffer, DRAM, ports."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.mom_isa import MOM
from repro.emulib.trace import DynInstr
from repro.isa.alpha import ALPHA
from repro.memsys import (CollapsingBufferHierarchy, ConventionalHierarchy,
                          MultiAddressHierarchy, PerfectMemory,
                          VectorCacheHierarchy)
from repro.memsys.cache import CacheArray, MshrFile, WriteBuffer
from repro.memsys.dram import DirectRambus
from repro.memsys.hierarchy import HierarchyParams, L2Cache
from repro.memsys.perfect import PortSet


def load(addr, nbytes=8):
    return DynInstr(ALPHA["ldq"], addr=addr, nbytes=nbytes)


def store(addr, nbytes=8):
    return DynInstr(ALPHA["stq"], addr=addr, nbytes=nbytes)


def vload(addr, stride, vl):
    return DynInstr(MOM["momldq"], addr=addr, nbytes=8, stride=stride, vl=vl)


def vstore(addr, stride, vl):
    return DynInstr(MOM["momstq"], addr=addr, nbytes=8, stride=stride, vl=vl)


# --- PerfectMemory / ports ---------------------------------------------------------

def test_perfect_scalar_latency():
    mem = PerfectMemory(latency=1, ports=1)
    assert mem.try_issue(load(0x100), 10) == 11


def test_perfect_port_contention():
    mem = PerfectMemory(latency=1, ports=1)
    assert mem.try_issue(load(0x100), 5) is not None
    assert mem.try_issue(load(0x108), 5) is None       # port busy this cycle
    assert mem.try_issue(load(0x108), 6) is not None


def test_perfect_vector_reserves_all_ports():
    mem = PerfectMemory(latency=1, ports=2, port_width=1)
    done = mem.try_issue(vload(0x100, 8, 16), 0)
    assert done == 0 + 8 - 1 + 1       # 16 elems / 2 ports = 8 cycles
    assert mem.try_issue(load(0x500), 3) is None       # both ports held
    assert mem.try_issue(load(0x500), 8) is not None


def test_perfect_wide_ports_speed_vectors():
    narrow = PerfectMemory(latency=1, ports=2, port_width=1)
    wide = PerfectMemory(latency=1, ports=2, port_width=2)
    t_narrow = narrow.try_issue(vload(0x100, 8, 16), 0)
    t_wide = wide.try_issue(vload(0x100, 8, 16), 0)
    assert t_wide < t_narrow


def test_perfect_high_latency():
    mem = PerfectMemory(latency=50, ports=1)
    assert mem.try_issue(load(0x100), 0) == 50


def test_portset_validation():
    with pytest.raises(ValueError):
        PortSet(0, 1)
    with pytest.raises(ValueError):
        PerfectMemory(latency=0)


def test_perfect_stats():
    mem = PerfectMemory(latency=1, ports=2)
    mem.try_issue(load(0x100), 0)
    mem.try_issue(vload(0x200, 8, 4), 1)
    stats = mem.stats()
    assert stats["scalar_accesses"] == 1
    assert stats["vector_accesses"] == 1
    assert stats["element_accesses"] == 5


# --- CacheArray -----------------------------------------------------------------------

def test_cache_array_hit_after_fill():
    arr = CacheArray(1024, 32, assoc=1)
    assert arr.probe(0x100) is False
    arr.fill(0x100)
    assert arr.probe(0x100) is True


def test_cache_array_direct_mapped_conflict():
    arr = CacheArray(1024, 32, assoc=1)     # 32 sets
    arr.fill(0x0)
    arr.fill(1024)                           # same set, different tag
    assert arr.probe(0x0) is False


def test_cache_array_lru_in_set():
    arr = CacheArray(2048, 32, assoc=2)      # 32 sets, 2 ways
    arr.fill(0)
    arr.fill(2048)
    arr.probe(0)                              # touch -> MRU
    arr.fill(4096)                            # evicts 2048
    assert arr.probe(0, update_lru=False) is True
    assert arr.contains(2048) is False


def test_cache_array_dirty_victim_address():
    arr = CacheArray(1024, 32, assoc=1)
    arr.fill(0x40, dirty=True)
    victim = arr.fill(0x40 + 1024)
    assert victim == 0x40


def test_cache_array_clean_victim_silent():
    arr = CacheArray(1024, 32, assoc=1)
    arr.fill(0x40, dirty=False)
    assert arr.fill(0x40 + 1024) is None


def test_cache_array_invalidate():
    arr = CacheArray(1024, 32, assoc=1)
    arr.fill(0x80)
    assert arr.invalidate(0x80) is True
    assert arr.invalidate(0x80) is False
    assert arr.contains(0x80) is False


def test_cache_array_miss_rate():
    arr = CacheArray(1024, 32, assoc=1)
    arr.probe(0)
    arr.fill(0)
    arr.probe(0)
    assert arr.miss_rate == pytest.approx(0.5)


def test_cache_array_size_validation():
    with pytest.raises(ValueError):
        CacheArray(1000, 32, assoc=1)


@given(st.lists(st.integers(0, 63), min_size=1, max_size=200))
@settings(max_examples=25, deadline=None)
def test_cache_array_agrees_with_reference(lines):
    """Fully-associative reference vs the set-indexed array, assoc covers
    the whole set population for a single set."""
    arr = CacheArray(8 * 32, 32, assoc=8)     # 1 set, 8 ways
    resident: list[int] = []
    for line in lines:
        addr = line * 32
        hit = arr.probe(addr)
        assert hit == (line in resident)
        if not hit:
            arr.fill(addr)
            resident.append(line)
            if len(resident) > 8:
                resident.pop(0)               # LRU order: oldest unused
        else:
            resident.remove(line)
            resident.append(line)


# --- MSHRs -------------------------------------------------------------------------------

def test_mshr_merge():
    m = MshrFile(2)
    assert m.lookup(5, 0) is None
    assert m.allocate(5, done_cycle=20, cycle=0)
    assert m.lookup(5, 10) == 20
    assert m.merges == 1


def test_mshr_capacity_and_expiry():
    m = MshrFile(1)
    assert m.allocate(1, 10, 0)
    assert not m.allocate(2, 10, 5)      # full
    assert m.full_events == 1
    assert m.allocate(2, 30, 11)         # first entry expired


def test_mshr_validation():
    with pytest.raises(ValueError):
        MshrFile(0)


# --- write buffer ---------------------------------------------------------------------------

def test_write_buffer_coalesces_same_line():
    wb = WriteBuffer(depth=2, line_bytes=128, drain_interval=6)
    assert wb.push(0x100, 0)
    assert wb.push(0x110, 0)     # same 128B line
    assert wb.coalesced == 1
    assert wb.occupancy(0) == 1


def test_write_buffer_full_then_drains():
    wb = WriteBuffer(depth=1, line_bytes=128, drain_interval=4)
    assert wb.push(0x000, 0)
    assert not wb.push(0x100, 1)     # full, distinct line
    assert wb.push(0x100, 10)        # drained by now


def test_write_buffer_selective_flush():
    wb = WriteBuffer(depth=4, line_bytes=128, drain_interval=6)
    wb.push(0x200, 0)
    delay = wb.flush_line(0x210, 0)      # same line -> flushed
    assert delay == 6
    assert wb.flush_line(0x210, 0) == 0  # already gone


# --- DRDRAM ------------------------------------------------------------------------------------

def test_dram_latency_plus_transfer():
    dram = DirectRambus(device_latency=45, bytes_per_cycle=5.3)
    done = dram.access(0, 128, 0)
    assert done == 45 + round(128 / 5.3)


def test_dram_channel_serializes():
    dram = DirectRambus()
    first = dram.access(0, 128, 0)
    second = dram.access(1 << 16, 128, 0)     # different device, same channel
    assert second > first


def test_dram_stats():
    dram = DirectRambus()
    dram.access(0, 128, 0)
    assert dram.stats()["dram_bytes"] == 128


def test_dram_validation():
    with pytest.raises(ValueError):
        DirectRambus(device_latency=0)


# --- L1 / L2 composition -------------------------------------------------------------------------

def test_conventional_cold_miss_then_hit():
    mem = ConventionalHierarchy(4)
    cold = mem.try_issue(load(0x2000), 0)
    assert cold > 40                      # through L2 + DRAM
    warm = mem.try_issue(load(0x2000), cold + 1)
    assert warm == cold + 1 + mem.params.l1_latency


def test_conventional_store_buffered():
    mem = ConventionalHierarchy(4)
    done = mem.try_issue(store(0x3000), 0)
    assert done is not None and done <= 2     # absorbed by write buffer


def test_conventional_unaligned_split():
    mem = ConventionalHierarchy(4)
    mem.try_issue(load(0x2001, nbytes=8), 0)
    assert mem.unaligned_splits == 1


def test_conventional_rejects_vector():
    mem = ConventionalHierarchy(4)
    with pytest.raises(ValueError):
        mem.try_issue(vload(0x100, 8, 16), 0)


def test_write_through_keeps_l2_current():
    mem = ConventionalHierarchy(4)
    t = mem.try_issue(load(0x4000), 0)        # fill both levels
    mem.try_issue(store(0x4000), t + 1)
    assert mem.l2.array.contains(0x4000) or True   # line present somewhere
    stats = mem.stats()
    assert stats["l1_hits"] >= 1


def test_l2_dirty_writeback_on_eviction():
    dram = DirectRambus()
    l2 = L2Cache(dram, latency=6)
    l2.access(0x0, True, 0)                       # dirty fill
    conflict = 0x0 + L2Cache.SIZE // 2            # same set, way 2
    conflict2 = 0x0 + L2Cache.SIZE
    l2.access(conflict, False, 200)
    l2.access(conflict2, False, 400)              # evicts the dirty line
    assert l2.writebacks == 1


def test_table3_params():
    conv4 = HierarchyParams.conventional(4)
    assert (conv4.l1_ports, conv4.l1_banks, conv4.l1_latency) == (2, 4, 1)
    conv8 = HierarchyParams.conventional(8)
    assert (conv8.l1_ports, conv8.l1_banks, conv8.l1_latency) == (4, 8, 2)
    vc4 = HierarchyParams.vector(4, collapsing=False)
    assert vc4.l2_latency == 8 and vc4.vector_port_width == 2
    col8 = HierarchyParams.vector(8, collapsing=True)
    assert col8.l2_latency == 10 and col8.vector_port_width == 4


# --- MOM cache organizations --------------------------------------------------------------------

def test_multi_address_handles_vectors():
    mem = MultiAddressHierarchy(4)
    done = mem.try_issue(vload(0x2000, 8, 16), 0)
    assert done is not None
    assert mem.stats()["vector_elements"] == 16


def test_multi_address_reserves_all_ports():
    mem = MultiAddressHierarchy(4)
    mem.try_issue(vload(0x2000, 8, 16), 0)
    assert mem.try_issue(load(0x100), 1) is None


def test_vector_cache_unit_stride_groups_lines():
    mem = VectorCacheHierarchy(4)
    mem.try_issue(vload(0x2000, 8, 16), 0)        # 128 contiguous bytes
    assert mem.stats()["vector_transactions"] == 1


def test_vector_cache_large_stride_degenerates():
    mem = VectorCacheHierarchy(4)
    mem.try_issue(vload(0x2000, 512, 16), 0)
    assert mem.stats()["vector_transactions"] == 16


def test_collapsing_buffer_groups_moderate_strides():
    vc = VectorCacheHierarchy(4)
    col = CollapsingBufferHierarchy(4)
    vc.try_issue(vload(0x2000, 32, 16), 0)
    col.try_issue(vload(0x2000, 32, 16), 0)
    assert col.stats()["vector_transactions"] < vc.stats()["vector_transactions"]


def test_collapsing_buffer_no_help_for_huge_strides():
    """The mpeg2-encode exception: far-apart words cannot be compressed."""
    col = CollapsingBufferHierarchy(4)
    col.try_issue(vload(0x2000, 4096, 16), 0)
    assert col.stats()["vector_transactions"] == 16


def test_vector_store_invalidates_l1():
    mem = VectorCacheHierarchy(4)
    t = mem.try_issue(load(0x2000), 0)            # bring line into L1
    mem.try_issue(vstore(0x2000, 8, 4), t + 1)
    assert mem.stats()["l1_invalidations"] >= 1
    assert not mem.l1.array.contains(0x2000)


def test_vector_load_bypasses_l1():
    mem = VectorCacheHierarchy(4)
    mem.try_issue(vload(0x6000, 8, 16), 0)
    assert not mem.l1.array.contains(0x6000)


def test_vector_cache_warm_hits_faster():
    mem = VectorCacheHierarchy(4)
    cold = mem.try_issue(vload(0x2000, 8, 16), 0)
    warm_start = cold + 10
    warm = mem.try_issue(vload(0x2000, 8, 16), warm_start) - warm_start
    assert warm < cold


def test_scalar_path_still_works_in_mom_hierarchies():
    for cls in (MultiAddressHierarchy, VectorCacheHierarchy,
                CollapsingBufferHierarchy):
        mem = cls(4)
        assert mem.try_issue(load(0x9000), 0) is not None
