"""The JIT fast path is bit-identical to the interpreted timing core.

numba is optional; where it is absent the same kernels run as plain
python under ``REPRO_JIT_PUREPY=1`` -- identical code path, identical
integer arithmetic, just slower.  The autouse fixture forces that mode so
parity is exercised on every host, with or without a compiler.
"""

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.cpu import Core, machine_config
from repro.cpu.batch import BatchCore, LaneSpec
from repro.cpu.jit import (NUMBA_VERSION, UnjittableError, jit_available,
                           jit_enabled, lane_unjittable_reason,
                           run_lanes_jit, warm)
from repro.exp.engine import Session
from repro.exp.spec import SweepSpec
from repro.memsys import PerfectMemory

from test_golden_digest import (GOLDEN_DIGESTS, grid_points, make_memsys,
                                result_digest)
from test_stream_threshold import _trace_of_length

#: Memory labels of the golden grid the kernel can express (PerfectMemory
#: lanes); the cache hierarchies fall back to the interpreted stepper.
JITTABLE = ("perfect", "latency50")


@pytest.fixture(autouse=True)
def _jit_capable_everywhere(monkeypatch):
    """Make the jit path executable even where numba is missing."""
    monkeypatch.setenv("REPRO_JIT_PUREPY", "1")
    monkeypatch.delenv("REPRO_NO_JIT", raising=False)


def _run(kernel, isa, way, label, *, jit):
    from repro.exp.engine import built_kernel
    core = Core(machine_config(way, isa), make_memsys(label, way, isa))
    return core.run(built_kernel(kernel, isa).trace, jit=jit)


# --- toggles and capability detection ----------------------------------------

def test_env_toggles(monkeypatch):
    assert jit_available()          # forced pure-python counts as available
    assert jit_enabled()
    monkeypatch.setenv("REPRO_NO_JIT", "1")
    assert not jit_enabled()
    result = _run("idct", "mmx", 2, "perfect", jit=None)
    assert result.meta["jit"] is False      # None defers to the env toggle
    monkeypatch.delenv("REPRO_NO_JIT")
    assert jit_enabled()


def test_lane_gating():
    cfg = machine_config(2, "mmx")
    perfect = LaneSpec(cfg, PerfectMemory(1, cfg.mem_ports,
                                          cfg.mem_port_width))
    assert lane_unjittable_reason(perfect) is None
    cache = LaneSpec(cfg, make_memsys("cache", 2, "mmx"))
    assert isinstance(lane_unjittable_reason(cache), str)


def test_numba_absent_means_no_jit(monkeypatch):
    """Without numba and without the pure-python override the path reports
    unavailable and ``Core.run(jit=True)`` silently stays interpreted --
    behavior identical to v1.4.0."""
    if NUMBA_VERSION is not None:
        pytest.skip("numba is installed; the absent branch is unreachable")
    monkeypatch.delenv("REPRO_JIT_PUREPY", raising=False)
    assert not jit_available()
    forced = _run("idct", "mmx", 2, "perfect", jit=True)
    assert forced.meta["jit"] is False
    assert result_digest(forced) == \
        result_digest(_run("idct", "mmx", 2, "perfect", jit=False))


def test_warm_is_idempotent():
    warm()
    warm()


# --- golden mini-grid parity -------------------------------------------------

def test_golden_grid_with_jit_forced_on():
    """Every grid point still lands on its seed digest with the jit path
    requested: PerfectMemory points run the kernel, cache points fall back
    to the interpreted stepper -- both bit-identical."""
    ran_jit = 0
    for kernel, isa, way, label in grid_points():
        result = _run(kernel, isa, way, label, jit=True)
        assert result_digest(result) == \
            GOLDEN_DIGESTS[(kernel, isa, way, label)], \
            (kernel, isa, way, label)
        assert result.meta["jit"] is (label in JITTABLE), \
            (kernel, isa, way, label)
        ran_jit += result.meta["jit"]
    assert ran_jit == sum(p[3] in JITTABLE for p in grid_points())


@pytest.mark.parametrize("point", [p for p in grid_points()
                                   if p[3] in JITTABLE][::8])
def test_golden_subset_with_jit_forced_off(point):
    result = _run(*point, jit=False)
    assert result.meta["jit"] is False
    assert result_digest(result) == GOLDEN_DIGESTS[point]


# --- mixed jit/fallback batch group through Session.run ----------------------

MIXED_SWEEP = SweepSpec(name="jit-mixed", kind="kernel", targets=("idct",),
                        isas=("mom",), ways=(2, 4),
                        memories=("perfect", "multiaddress"))


def test_mixed_group_through_session(tmp_path):
    """One same-trace batch group where half the lanes run the kernel and
    half fall back: identical results to a jit-off session, with
    ``meta["jit"]`` recording which path each lane took."""
    on = Session(tmp_path / "on", salt="x", jit=True).run(MIXED_SWEEP)
    off = Session(tmp_path / "off", salt="x", jit=False).run(MIXED_SWEEP)
    assert set(on) == set(off) and len(on) == 4
    for point, result in on.items():
        assert result_digest(result) == result_digest(off[point]), point
        assert result.meta["jit"] is (point.memory == "perfect"), point
        assert off[point].meta["jit"] is False, point
        assert result.meta.get("batch_lanes") == 4, point


# --- STREAM_THRESHOLD boundary through the jit path --------------------------

THRESHOLD = 512


@pytest.mark.parametrize("n", [THRESHOLD - 1, THRESHOLD, THRESHOLD + 1],
                         ids=("below", "exact", "above"))
def test_stream_boundary_through_jit(monkeypatch, n):
    trace = _trace_of_length(n)
    cfg = machine_config(4, "mmx")
    ref = Core(cfg, PerfectMemory(1, 2, 1)).run(trace, jit=False)
    monkeypatch.setattr(Core, "STREAM_THRESHOLD", THRESHOLD)
    trace.invalidate_summary()      # a cached record list would win
    result = Core(cfg, PerfectMemory(1, 2, 1)).run(trace, jit=True)
    assert result.meta["jit"] is True
    assert result_digest(result) == result_digest(ref)


def test_decode_ring_wraparound():
    """A long trace through deliberately small decode blocks and rings
    forces many wraparounds and retention checks in the jit driver."""
    trace = _trace_of_length(5000)
    cfg = machine_config(4, "mmx")
    ref = Core(cfg, PerfectMemory(1, 2, 1)).run(trace, jit=False)
    spec = LaneSpec(machine_config(4, "mmx"), PerfectMemory(1, 2, 1))
    (stats,) = run_lanes_jit([spec], trace, block=512, ring=2048)
    assert stats["cycles"] == ref.cycles
    assert stats["fetch_stalls"] == ref.fetch_stall_cycles
    assert stats["rename_stalls"] == ref.rename_stall_events


def test_unjittable_trace_length_guard():
    """The 2^31 record-count guard raises before touching any state."""
    class _HugeTrace:
        def __len__(self):
            return 1 << 31
    spec = LaneSpec(machine_config(2, "mmx"), PerfectMemory(1, 2, 1))
    with pytest.raises(UnjittableError):
        run_lanes_jit([spec], _HugeTrace())


# --- hypothesis differential fuzzer ------------------------------------------

@settings(max_examples=25, deadline=None,
          suppress_health_check=[HealthCheck.function_scoped_fixture])
@given(way=st.sampled_from((1, 2, 4, 8)),
       isa=st.sampled_from(("mmx", "mom")),
       latency=st.sampled_from((1, 3, 50)),
       acc=st.booleans(), late=st.booleans(), zero=st.booleans(),
       n=st.integers(min_value=40, max_value=400))
def test_fuzz_jit_matches_python(way, isa, latency, acc, late, zero, n):
    from repro.emulib.trace import Trace
    from repro.exp.engine import built_kernel
    seed = built_kernel("idct", isa).trace
    trace = Trace(seed.isa)
    while len(trace) < n:
        trace.extend(seed)
    trace.truncate(n)
    trace.invalidate_summary()
    cfg = machine_config(way, isa)

    def core():
        return Core(cfg, PerfectMemory(latency, cfg.mem_ports,
                                       cfg.mem_port_width),
                    acc_chaining=acc, late_release=late,
                    zero_idiom_elision=zero)

    ref = core().run(trace, jit=False)
    jitted = core().run(trace, jit=True)
    assert jitted.meta["jit"] is True
    assert result_digest(jitted) == result_digest(ref)


# --- repro bench schema-drift tolerance --------------------------------------

def test_bench_delta_lines_tolerate_schema_drift():
    from repro.exp.cli import _bench_delta_lines
    old = {"a": 1, "dropped": 2.0, "same": "x", "renamed": 3}
    new = {"a": 2, "added": True, "same": "x"}
    text = "\n".join(_bench_delta_lines(old, new))
    assert "a: 1 -> 2  (+100.0%)" in text
    assert "dropped: 2.0 -> n/a" in text
    assert "added: n/a -> True" in text
    assert "renamed: 3 -> n/a" in text
    assert "same" not in text
    assert _bench_delta_lines({}, {}) == []
    assert _bench_delta_lines({"k": 1}, {"k": 1}) == []
