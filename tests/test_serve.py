"""Tests for the serving layer: protocol, sharding, the live service.

The service tests boot a real :class:`~repro.serve.server.SimServer`
(with real worker processes) on an ephemeral port inside a background
thread, and talk to it with the synchronous :class:`~repro.serve.Client`
from the test thread -- the same topology as ``repro serve`` plus
``repro submit``, scaled down.

The headline test replays the golden mini-grid of
``tests/test_golden_digest.py`` from two concurrent clients and checks
every served result against the pinned seed digests: the service is
bit-identical to an in-process session, and each unique point simulates
exactly once no matter how many clients ask.
"""

import contextlib
import json
import socket
import threading

import pytest

from repro import __version__
from repro.exp import PointSpec, Session
from repro.serve import Client, ServeError, SimServer, run_server
from repro.serve import protocol
from repro.serve.shard import build_key, shard_index

import test_golden_digest as golden


# --- protocol -----------------------------------------------------------------

def test_protocol_encode_decode_roundtrip():
    message = {"op": "submit", "protocol": protocol.PROTOCOL_VERSION,
               "points": [{"target": "idct"}]}
    line = protocol.encode(message)
    assert line.endswith(b"\n") and b"\n" not in line[:-1]
    assert protocol.decode(line) == message


def test_protocol_decode_rejects_garbage():
    with pytest.raises(protocol.ProtocolError):
        protocol.decode(b"not json\n")
    with pytest.raises(protocol.ProtocolError):
        protocol.decode(b"[1, 2, 3]\n")        # JSON, but not an object


def test_protocol_check_request_version_handshake():
    assert protocol.check_request(protocol.request("ping")) == "ping"
    with pytest.raises(protocol.ProtocolError, match="protocol mismatch"):
        protocol.check_request({"op": "ping", "protocol": 99})
    with pytest.raises(protocol.ProtocolError):
        protocol.check_request({"protocol": protocol.PROTOCOL_VERSION})


# --- sharding -----------------------------------------------------------------

def test_build_key_groups_points_sharing_a_build():
    a = PointSpec(kind="kernel", target="idct", isa="mom", way=2).payload()
    b = PointSpec(kind="kernel", target="idct", isa="mom", way=8,
                  latency=50).payload()
    c = PointSpec(kind="kernel", target="idct", isa="mmx", way=2).payload()
    assert build_key(a) == build_key(b)        # way/latency don't rebuild
    assert build_key(a) != build_key(c)        # a different ISA does


def test_shard_index_is_stable_and_in_range():
    key = ("kernel", "idct", "mom", 1)
    for shards in (1, 2, 4, 7):
        first = shard_index(key, shards)
        assert 0 <= first < shards
        assert shard_index(key, shards) == first


# --- live service harness -----------------------------------------------------

@contextlib.contextmanager
def live_server(tmp_path, **kwargs):
    """A real server on an ephemeral port, torn down gracefully."""
    kwargs.setdefault("workers", 2)
    kwargs.setdefault("cache_dir", tmp_path / "cache")
    server = SimServer("127.0.0.1", 0, **kwargs)
    started = threading.Event()

    def runner():
        import asyncio

        asyncio.run(run_server(server, started))

    thread = threading.Thread(target=runner, daemon=True)
    thread.start()
    assert started.wait(60), "server failed to start"
    try:
        yield server
    finally:
        try:
            with Client("127.0.0.1", server.port, timeout=60) as client:
                client.shutdown()
        except (OSError, ServeError):
            pass                       # already stopped by the test
        thread.join(60)
        assert not thread.is_alive(), "server failed to drain"


MINI = tuple(
    PointSpec(kind="kernel", target="idct", isa=isa, way=way)
    for isa in ("mmx", "mom") for way in (2, 4))


def test_ping_handshake_reports_version_salt_and_workers(tmp_path):
    with live_server(tmp_path) as server:
        with Client("127.0.0.1", server.port, timeout=60) as client:
            pong = client.ping()
    assert pong["ok"] and pong["op"] == "pong"
    assert pong["protocol"] == protocol.PROTOCOL_VERSION
    assert pong["version"] == __version__
    assert pong["salt"] == server.session.salt
    assert pong["workers"] == 2
    assert pong["stats"]["workers_alive"] == 2


def test_mismatched_protocol_fails_loudly(tmp_path):
    with live_server(tmp_path) as server:
        with socket.create_connection(("127.0.0.1", server.port),
                                      timeout=60) as sock:
            sock.sendall(json.dumps(
                {"op": "ping", "protocol": 99}).encode() + b"\n")
            reply = json.loads(sock.makefile().readline())
    assert reply["ok"] is False
    assert "protocol mismatch" in reply["error"]
    assert str(protocol.PROTOCOL_VERSION) in reply["error"]


def test_served_results_match_in_process_session(tmp_path):
    expected = Session(tmp_path / "baseline", jobs=1).run(MINI)
    with live_server(tmp_path) as server:
        with Client("127.0.0.1", server.port, timeout=120) as client:
            served = client.run(MINI)
            again = client.run(MINI)
    assert served == expected
    assert again == expected
    assert server.stats["simulated"] == len(MINI)
    assert server.stats["cache_hits"] == len(MINI)     # the second run
    # Fresh simulations stream unmarked; every replay -- even out of the
    # server's own memo -- carries the cache_hit marker on the wire.
    assert not any(r.meta.get("cache_hit") for r in served.values())
    assert all(r.meta.get("cache_hit") for r in again.values())


def test_submit_streams_results_then_done(tmp_path):
    with live_server(tmp_path) as server:
        with Client("127.0.0.1", server.port, timeout=120) as client:
            messages = list(client.submit_iter(MINI))
    kinds = [m["op"] for m in messages]
    assert kinds[-1] == "done"
    assert kinds[:-1].count("result") == len(MINI)
    assert kinds[0] == "accepted"
    done = messages[-1]
    assert done["simulated"] == len(MINI)
    assert done["cache_hits"] == done["dedup_hits"] == 0
    seqs = sorted(m["seq"] for m in messages if m["op"] == "result")
    assert seqs == list(range(len(MINI)))


def test_failed_point_streams_error_and_shard_survives(tmp_path):
    bad = PointSpec(kind="kernel", target="no_such_kernel", isa="mom", way=4)
    with live_server(tmp_path) as server:
        with Client("127.0.0.1", server.port, timeout=120) as client:
            messages = list(client.submit_iter([bad]))
            failures = [m for m in messages if m["op"] == "result"]
            assert len(failures) == 1 and failures[0]["ok"] is False
            assert "no_such_kernel" in failures[0]["error"]
            with pytest.raises(ServeError, match="no_such_kernel"):
                client.run([bad])
            # The shard that hit the error still serves good points.
            ok = client.run(MINI[:1])
            assert len(ok) == 1
            assert client.stats()["workers_alive"] == 2


def test_submit_rejects_malformed_points(tmp_path):
    with live_server(tmp_path) as server:
        with Client("127.0.0.1", server.port, timeout=60) as client:
            with pytest.raises(ServeError, match="bad point payload"):
                list(client.submit_iter([{"kind": "kernel", "way": 3,
                                          "target": "idct", "isa": "mom"}]))
        with Client("127.0.0.1", server.port, timeout=60) as client:
            with pytest.raises(ServeError, match="points"):
                list(client.submit_iter([]))


def test_cache_round_trip_with_in_process_session(tmp_path):
    """The service and Session share one store, in both directions."""
    cache_dir = tmp_path / "cache"
    warm = Session(cache_dir).run(MINI[:2])                # pre-warm 2 points
    with live_server(tmp_path, cache_dir=cache_dir) as server:
        with Client("127.0.0.1", server.port, timeout=120) as client:
            served = client.run(MINI)
        assert server.stats["cache_hits"] == 2
        assert server.stats["simulated"] == 2
    assert {p: served[p] for p in MINI[:2]} == warm
    after = Session(cache_dir)
    for point in MINI:
        replay = after.lookup(point)
        assert replay is not None and replay == served[point]
        assert replay.meta["cache_hit"] is True


# --- the golden mini-grid, served ---------------------------------------------

def _golden_point(kernel, isa, way, memory_label) -> PointSpec:
    """The PointSpec equivalent of one golden mini-grid coordinate."""
    cache_name = {"alpha": "conventional", "mmx": "conventional",
                  "mdmx": "conventional", "mom": "multiaddress"}
    if memory_label == "perfect":
        return PointSpec(kind="kernel", target=kernel, isa=isa, way=way)
    if memory_label == "latency50":
        return PointSpec(kind="kernel", target=kernel, isa=isa, way=way,
                         latency=50)
    memory = (cache_name[isa] if memory_label == "cache" else memory_label)
    return PointSpec(kind="kernel", target=kernel, isa=isa, way=way,
                     memory=memory)


def test_two_concurrent_clients_reproduce_golden_digests(tmp_path):
    """Service determinism: the full golden mini-grid, two clients at once.

    Every digest streamed to either client must equal the pinned seed
    digest, and each unique point must be simulated exactly once across
    both clients (the rest answered by cache or in-flight dedup).
    """
    coords = list(golden.grid_points())
    points = [_golden_point(*c) for c in coords]
    outcomes: dict[str, dict] = {}
    errors: list[BaseException] = []

    def one_client(name, port):
        try:
            with Client("127.0.0.1", port, timeout=600) as client:
                outcomes[name] = client.run(points)
        except BaseException as exc:       # surfaced by the main thread
            errors.append(exc)

    with live_server(tmp_path, workers=2) as server:
        threads = [threading.Thread(target=one_client,
                                    args=(f"c{i}", server.port))
                   for i in range(2)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(600)
        stats = dict(server.stats)
    assert not errors, errors
    assert set(outcomes) == {"c0", "c1"}

    for name, results in outcomes.items():
        for coord, point in zip(coords, points):
            digest = golden.result_digest(results[point])
            assert digest == golden.GOLDEN_DIGESTS[coord], (name, coord)

    # 2 x N submitted points: N simulations, N cache-or-dedup answers.
    unique = len(points)
    assert stats["simulated"] == unique
    assert stats["cache_hits"] + stats["dedup_hits"] == unique
    assert stats["errors"] == 0


# --- worker death: no leaked slots, capacity recovers --------------------------

def test_shard_pool_fails_pending_keys_of_killed_worker_and_respawns():
    """Pool-level regression: SIGKILL a worker mid-batch.  Its outstanding
    keys must be reported as errors (so the owner can resolve futures and
    release backpressure slots) and the worker must be respawned."""
    from repro.serve.shard import ShardPool

    results: dict[str, tuple] = {}
    done = threading.Event()

    def on_result(key, result, error):
        results[key] = (result, error)
        done.set()

    # A build slow enough (seconds) that the kill lands mid-execution.
    slow = PointSpec(kind="app", target="mpeg2_encode", isa="alpha",
                     way=4).payload()
    pool = ShardPool(1, on_result)
    try:
        pool.submit([("slowkey", slow)])
        import time
        time.sleep(0.5)                   # worker is inside the build
        pool._procs[0].kill()
        assert done.wait(30), "killed worker's key was never failed"
        result, error = results["slowkey"]
        assert result is None and "died" in error
        # Respawn may lag the key failure by the flap backoff (a worker
        # dying young is treated as flapping); waiters never wait on it.
        deadline = time.time() + 10
        while pool.alive() < 1 and time.time() < deadline:
            time.sleep(0.05)
        assert pool.restarts == 1
        assert pool.alive() == 1          # respawned on a fresh queue
    finally:
        pool.close()


def test_killed_worker_streams_error_and_capacity_recovers(tmp_path):
    """Server-level regression: with a single backpressure slot, a worker
    killed mid-simulation used to strand the in-flight future forever --
    the slot never released and every later submit hung.  Now the client
    gets an ok:false result for the doomed point, and a follow-up submit
    simulates normally on the respawned worker (proof the slot came back:
    with max_inflight=1 a leak would deadlock it)."""
    import time

    doomed = PointSpec(kind="app", target="mpeg2_encode", isa="alpha", way=4)
    with live_server(tmp_path, workers=1, max_inflight=1) as server:
        with Client("127.0.0.1", server.port, timeout=120) as client:
            stream = client.submit_iter([doomed])
            accepted = next(stream)
            assert accepted["op"] == "accepted"
            time.sleep(0.5)               # let the batch reach the worker
            server._pool._procs[0].kill()
            messages = list(stream)
        kinds = [m["op"] for m in messages]
        assert kinds[-1] == "done"
        failures = [m for m in messages if m["op"] == "result"]
        assert len(failures) == 1 and failures[0]["ok"] is False
        assert "died" in failures[0]["error"]
        assert server.stats["errors"] == 1

        # Capacity recovered: the single slot is free again and the
        # respawned worker serves a fresh simulation point.
        with Client("127.0.0.1", server.port, timeout=120) as client:
            ok = client.run([MINI[0]])
            assert len(ok) == 1
            assert client.stats()["workers_alive"] == 1


def test_worker_killed_while_idle_does_not_poison_the_queue():
    """A worker killed while *blocked in queue.get()* dies holding the
    task queue's reader lock.  The watchdog must hand the respawned
    worker a fresh queue -- on the old one its first get() would
    deadlock and the shard would wedge while looking alive."""
    import time

    results: dict[str, tuple] = {}
    arrived = threading.Event()

    def on_result(key, result, error):
        results[key] = (result, error)
        arrived.set()

    from repro.serve.shard import ShardPool

    pool = ShardPool(1, on_result)
    try:
        time.sleep(0.3)                   # worker parked inside get()
        pool._procs[0].kill()
        deadline = time.time() + 10
        while pool.restarts < 1 and time.time() < deadline:
            time.sleep(0.05)
        assert pool.restarts == 1

        # The respawned worker must actually consume from the new queue.
        quick = PointSpec(kind="kernel", target="idct", isa="mom",
                          way=2).payload()
        pool.submit([("afterkey", quick)])
        assert arrived.wait(120), "respawned worker never served a batch"
        result, error = results["afterkey"]
        assert error is None and result["cycles"] > 0
    finally:
        pool.close()


def test_multi_point_task_runs_through_batch_core():
    """A same-build multi-point task takes the worker's BatchCore path:
    results stream back per point, bit-identical to ``execute_point``,
    with the batch provenance recorded in meta."""
    from repro.cpu import SimResult
    from repro.exp.engine import execute_point
    from repro.serve.shard import ShardPool

    batch = [(f"k{way}", PointSpec(kind="kernel", target="idct", isa="mom",
                                   way=way).payload())
             for way in (1, 2, 4, 8)]
    results: dict[str, tuple] = {}
    done = threading.Event()

    def on_result(key, result, error):
        results[key] = (result, error)
        if len(results) == len(batch):
            done.set()

    pool = ShardPool(1, on_result)
    try:
        pool.submit(batch)
        assert done.wait(300), "batched task never completed"
    finally:
        pool.close()

    for key, payload in batch:
        got, error = results[key]
        assert error is None
        assert got["meta"]["batch_lanes"] == len(batch)
        assert SimResult.from_dict(got) == \
            execute_point(PointSpec.from_payload(payload))
