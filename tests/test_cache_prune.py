"""Age-based ResultCache eviction and its safety against live writers."""

import json
import os
import threading
import time

import pytest

from repro.exp.cache import ResultCache


def _backdate(path, seconds):
    past = time.time() - seconds
    os.utime(path, (past, past))


def test_prune_evicts_only_old_entries(tmp_path):
    cache = ResultCache(tmp_path)
    for i in range(6):
        cache.put(f"key{i}", {"result": i})
    for i in range(3):
        _backdate(cache._path(f"key{i}"), 3600)
    removed = cache.prune(600)
    assert removed == 3
    assert len(cache) == 3
    for i in range(3):
        assert cache.get(f"key{i}") is None
    for i in range(3, 6):
        assert cache.get(f"key{i}")["result"] == i


def test_prune_refreshed_entries_survive(tmp_path):
    """put() rewrites the file, so revalidated points reset their age."""
    cache = ResultCache(tmp_path)
    cache.put("hot", {"result": 1})
    _backdate(cache._path("hot"), 3600)
    cache.put("hot", {"result": 2})
    assert cache.prune(600) == 0
    assert cache.get("hot")["result"] == 2


def test_prune_sweeps_only_stale_tmp_orphans(tmp_path):
    """A young *.tmp belongs to a writer between mkstemp and rename and
    must survive; an old orphan (crashed writer) is swept."""
    cache = ResultCache(tmp_path)
    cache.put("a", {"result": 1})
    stale = tmp_path / "deadbeef.tmp"
    stale.write_text("{}")
    _backdate(stale, 3600)
    fresh = tmp_path / "cafef00d.tmp"
    fresh.write_text("{}")
    assert cache.prune(600) == 0          # orphans don't count as entries
    assert not stale.exists()
    assert fresh.exists()
    assert cache.get("a")["result"] == 1


def test_prune_rejects_negative_age(tmp_path):
    with pytest.raises(ValueError):
        ResultCache(tmp_path).prune(-1)


def test_prune_missing_directory_is_noop(tmp_path):
    assert ResultCache(tmp_path / "nope").prune(0) == 0


def test_prune_mid_serve_never_corrupts_atomic_writes(tmp_path):
    """The serve-layer hazard: a session persisting results while an
    operator prunes.  Whatever interleaving occurs, every observable
    entry must be complete valid JSON (atomic-rename protocol intact)
    and a get() is either a clean miss or the full record -- never a
    torn read, never an exception.
    """
    cache = ResultCache(tmp_path)
    stop = threading.Event()
    errors: list[BaseException] = []

    def writer(worker: int) -> None:
        i = 0
        try:
            while not stop.is_set():
                key = f"w{worker}k{i % 7}"
                cache.put(key, {"spec": {"i": i}, "result": {"cycles": i}})
                entry = cache.get(key)
                # A concurrent prune(0) may have unlinked it (clean miss)
                # but a present entry must be whole.
                if entry is not None:
                    assert entry["result"]["cycles"] == i
                i += 1
        except BaseException as exc:      # pragma: no cover - failure path
            errors.append(exc)

    def pruner() -> None:
        try:
            while not stop.is_set():
                cache.prune(0)
        except BaseException as exc:      # pragma: no cover - failure path
            errors.append(exc)

    threads = [threading.Thread(target=writer, args=(n,)) for n in range(2)]
    threads.append(threading.Thread(target=pruner))
    for t in threads:
        t.start()
    time.sleep(0.8)
    stop.set()
    for t in threads:
        t.join(timeout=10)
    assert not errors, errors

    # Post-mortem: every surviving file decodes as a complete entry.
    for path in cache.entries():
        entry = json.loads(path.read_text())
        assert entry["version"] == 1
        assert "result" in entry
    # And the cache still works.
    cache.put("after", {"result": "fine"})
    assert cache.get("after")["result"] == "fine"


def test_clear_spares_fresh_tmp_files(tmp_path):
    """clear() removes every entry but honours the same TMP_GRACE_SECONDS
    window as prune(): a fresh *.tmp belongs to a live writer between
    mkstemp and its atomic rename, and unlinking it breaks the rename."""
    cache = ResultCache(tmp_path)
    cache.put("a", {"result": 1})
    cache.put("b", {"result": 2})
    stale = tmp_path / "deadbeef.tmp"
    stale.write_text("{}")
    _backdate(stale, 3600)
    fresh = tmp_path / "cafef00d.tmp"
    fresh.write_text("{}")
    assert cache.clear() == 2
    assert len(cache) == 0
    assert not stale.exists()
    assert fresh.exists()


def test_clear_mid_put_never_breaks_writers(tmp_path):
    """Regression: clear() used to unlink *young* temp files, so a writer
    racing a clear could lose its temp file between mkstemp and
    os.replace and blow up with FileNotFoundError.  With the grace window
    honoured, concurrent clear-vs-put is exception-free and every
    observable entry stays whole."""
    cache = ResultCache(tmp_path)
    stop = threading.Event()
    errors: list[BaseException] = []

    def writer(worker: int) -> None:
        i = 0
        try:
            while not stop.is_set():
                key = f"w{worker}k{i % 5}"
                cache.put(key, {"spec": {"i": i}, "result": {"cycles": i}})
                entry = cache.get(key)
                if entry is not None:      # clear() may have won: clean miss
                    assert entry["result"]["cycles"] == i
                i += 1
        except BaseException as exc:      # pragma: no cover - failure path
            errors.append(exc)

    def clearer() -> None:
        try:
            while not stop.is_set():
                cache.clear()
        except BaseException as exc:      # pragma: no cover - failure path
            errors.append(exc)

    threads = [threading.Thread(target=writer, args=(n,)) for n in range(2)]
    threads.append(threading.Thread(target=clearer))
    for t in threads:
        t.start()
    time.sleep(0.8)
    stop.set()
    for t in threads:
        t.join(timeout=10)
    assert not errors, errors

    # The store still functions after the storm.
    cache.put("after", {"result": "fine"})
    assert cache.get("after")["result"] == "fine"


def test_clear_sweeps_backdated_tmp_with_explicit_now(tmp_path):
    cache = ResultCache(tmp_path)
    orphan = tmp_path / "orphan.tmp"
    orphan.write_text("{}")
    assert cache.clear() == 0              # young: survives a normal clear
    assert orphan.exists()
    import time as _time
    assert cache.clear(now=_time.time() + 3600) == 0
    assert not orphan.exists()             # aged past the grace window


def test_cli_age_parsing():
    from repro.exp.cli import _parse_age
    assert _parse_age("300") == 300
    assert _parse_age("90s") == 90
    assert _parse_age("30m") == 1800
    assert _parse_age("12h") == 12 * 3600
    assert _parse_age("7d") == 7 * 86400
    assert _parse_age("1.5h") == 5400
    with pytest.raises(ValueError):
        _parse_age("soon")
    with pytest.raises(ValueError):
        _parse_age("-1s")
    with pytest.raises(ValueError):
        _parse_age("d")         # suffix with no number
    with pytest.raises(ValueError):
        _parse_age("nan")       # non-finite would make prune a silent no-op
    with pytest.raises(ValueError):
        _parse_age("inf")


def test_cli_prune_command(tmp_path, capsys):
    from repro.exp.cli import main
    cache = ResultCache(tmp_path)
    cache.put("old", {"result": 1})
    _backdate(cache._path("old"), 3600)
    cache.put("new", {"result": 2})
    rc = main(["cache", "--prune", "30m", "--cache-dir", str(tmp_path)])
    out = capsys.readouterr().out
    assert rc == 0
    assert "pruned 1" in out
    assert cache.get("old") is None
    assert cache.get("new")["result"] == 2
