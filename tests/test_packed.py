"""Unit and property tests for the packed sub-word arithmetic primitives."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import packed
from repro.isa.model import ElemType

ELEMS = [ElemType.B, ElemType.H, ElemType.W]
ALL_ELEMS = ELEMS + [ElemType.Q]

words = st.integers(min_value=0, max_value=(1 << 64) - 1)


def lanes_of(word, elem, signed=False):
    return packed.to_lanes(np.uint64(word), elem, signed=signed).astype(np.int64)


# --- lane packing ---------------------------------------------------------------

@pytest.mark.parametrize("elem", ALL_ELEMS)
def test_lane_roundtrip(elem):
    word = np.uint64(0x0123456789ABCDEF)
    assert int(packed.from_lanes(packed.to_lanes(word, elem))) == int(word)


@given(words)
@settings(max_examples=60)
def test_lane_roundtrip_property(word):
    for elem in ALL_ELEMS:
        assert int(packed.from_lanes(packed.to_lanes(np.uint64(word), elem))) == word


def test_to_lanes_little_endian():
    lanes = packed.to_lanes(np.uint64(0x0807060504030201), ElemType.B)
    assert list(lanes) == [1, 2, 3, 4, 5, 6, 7, 8]


def test_to_lanes_signed_view():
    lanes = packed.to_lanes(np.uint64(0xFF), ElemType.B, signed=True)
    assert lanes[0] == -1 and lanes[1] == 0


def test_to_lanes_array_shape():
    arr = np.zeros(16, dtype=np.uint64)
    assert packed.to_lanes(arr, ElemType.H).shape == (16, 4)


@pytest.mark.parametrize("elem,expected", [
    (ElemType.B, 8), (ElemType.H, 4), (ElemType.W, 2), (ElemType.Q, 1),
])
def test_lane_count(elem, expected):
    assert packed.lane_count(elem) == expected
    assert elem.lanes == expected
    assert elem.bits == 64 // expected


# --- add / sub ---------------------------------------------------------------------

@pytest.mark.parametrize("elem", ELEMS)
def test_add_wrap_matches_modular(elem):
    a = np.uint64(0xFFFFFFFFFFFFFFFF)          # every lane at its maximum
    ones = packed.from_lanes(np.ones((1, elem.lanes), dtype=np.int64))[0]
    out = lanes_of(packed.add_wrap(a, ones, elem), elem)
    assert (out == 0).all()


def test_add_sat_unsigned_clamps():
    a = np.uint64(0xFF)
    assert int(packed.add_sat(a, a, ElemType.B, signed=False)) & 0xFF == 0xFF


def test_add_sat_signed_clamps_positive():
    a = int(np.uint64(0x7F))       # +127 in lane 0
    out = packed.add_sat(np.uint64(a), np.uint64(1), ElemType.B, signed=True)
    assert int(out) & 0xFF == 0x7F


def test_add_sat_signed_clamps_negative():
    a = 0x80                        # -128 in lane 0
    out = packed.add_sat(np.uint64(a), np.uint64(0xFF), ElemType.B, signed=True)
    assert int(out) & 0xFF == 0x80  # -128 + -1 saturates at -128


def test_sub_sat_unsigned_floors_at_zero():
    out = packed.sub_sat(np.uint64(0x01), np.uint64(0x02), ElemType.B, False)
    assert int(out) & 0xFF == 0


@given(words, words)
@settings(max_examples=40)
def test_add_commutes(a, b):
    for elem in ELEMS:
        x = packed.add_wrap(np.uint64(a), np.uint64(b), elem)
        y = packed.add_wrap(np.uint64(b), np.uint64(a), elem)
        assert int(x) == int(y)


@given(words, words)
@settings(max_examples=40)
def test_sub_is_add_inverse_mod_lane(a, b):
    for elem in ELEMS:
        s = packed.add_wrap(np.uint64(a), np.uint64(b), elem)
        back = packed.sub_wrap(s, np.uint64(b), elem)
        assert int(back) == a


@given(words, words)
@settings(max_examples=40)
def test_saturating_add_bounds(a, b):
    for elem in ELEMS:
        smin, smax = -(1 << (elem.bits - 1)), (1 << (elem.bits - 1)) - 1
        out = lanes_of(packed.add_sat(np.uint64(a), np.uint64(b), elem, True),
                       elem, signed=True)
        assert (out >= smin).all() and (out <= smax).all()
        la = lanes_of(a, elem, signed=True)
        lb = lanes_of(b, elem, signed=True)
        expected = np.clip(la + lb, smin, smax)
        assert (out == expected).all()


# --- multiplies -----------------------------------------------------------------------

def test_mul_low_keeps_low_bits():
    a = np.uint64(0x0003_0002_0001_0100)   # halves: 0x100, 1, 2, 3
    out = lanes_of(packed.mul_low(a, a, ElemType.H), ElemType.H)
    assert list(out) == [0x100 * 0x100 & 0xFFFF, 1, 4, 9]


def test_mul_high_signed():
    a = int(np.int16(-30000)) & 0xFFFF
    out = packed.mul_high(np.uint64(a), np.uint64(a), ElemType.H, signed=True)
    assert lanes_of(out, ElemType.H, True)[0] == (30000 * 30000) >> 16


def test_mul_high_unsigned():
    out = packed.mul_high(np.uint64(0xFFFF), np.uint64(0xFFFF), ElemType.H, False)
    assert lanes_of(out, ElemType.H)[0] == (0xFFFF * 0xFFFF) >> 16


def test_mul_add_pairs():
    a = np.uint64(0x0004_0003_0002_0001)   # halves 1,2,3,4
    out = packed.mul_add_pairs(a, a)
    w = lanes_of(out, ElemType.W)
    assert list(w) == [1 + 4, 9 + 16]


@given(st.lists(st.integers(-2048, 2047), min_size=4, max_size=4),
       st.lists(st.integers(-2048, 2047), min_size=4, max_size=4))
@settings(max_examples=40)
def test_mul_add_pairs_property(xs, ys):
    a = packed.from_lanes(np.asarray(xs, dtype=np.int16).reshape(1, 4))[0]
    b = packed.from_lanes(np.asarray(ys, dtype=np.int16).reshape(1, 4))[0]
    out = lanes_of(packed.mul_add_pairs(a, b), ElemType.W, signed=True)
    assert out[0] == xs[0] * ys[0] + xs[1] * ys[1]
    assert out[1] == xs[2] * ys[2] + xs[3] * ys[3]


# --- average / absolute difference / SAD -------------------------------------------------

def test_avg_rounds_up():
    out = packed.avg_round(np.uint64(1), np.uint64(2), ElemType.B)
    assert int(out) & 0xFF == 2


def test_absdiff_symmetric():
    a, b = np.uint64(0x10), np.uint64(0x30)
    assert int(packed.absdiff(a, b, ElemType.B)) == int(packed.absdiff(b, a, ElemType.B))
    assert int(packed.absdiff(a, b, ElemType.B)) & 0xFF == 0x20


@given(words, words)
@settings(max_examples=40)
def test_sad_equals_numpy(a, b):
    la, lb = lanes_of(a, ElemType.B), lanes_of(b, ElemType.B)
    assert int(packed.sad(np.uint64(a), np.uint64(b))) == int(np.abs(la - lb).sum())


def test_sad_zero_for_equal():
    assert int(packed.sad(np.uint64(12345), np.uint64(12345))) == 0


def test_abs_packed_saturates_min():
    out = packed.abs_packed(np.uint64(0x80), ElemType.B)  # |-128| -> 127 (sat)
    assert int(out) & 0xFF == 127


# --- min / max / compares -------------------------------------------------------------------

def test_minmax_unsigned():
    a, b = np.uint64(0x01FF), np.uint64(0xFF01)
    assert lanes_of(packed.minmax(a, b, ElemType.B, False, False), ElemType.B)[0] == 1
    assert lanes_of(packed.minmax(a, b, ElemType.B, False, True), ElemType.B)[0] == 0xFF


def test_minmax_signed_differs_from_unsigned():
    a, b = np.uint64(0x7F), np.uint64(0x80)     # +127 vs -128 signed
    assert lanes_of(packed.minmax(a, b, ElemType.B, True, True), ElemType.B, True)[0] == 127
    assert lanes_of(packed.minmax(a, b, ElemType.B, False, True), ElemType.B)[0] == 0x80


def test_cmp_mask_all_ones_or_zero():
    eq = packed.cmp_mask(np.uint64(5), np.uint64(5), ElemType.B, "eq")
    assert lanes_of(eq, ElemType.B)[0] == 0xFF
    assert lanes_of(eq, ElemType.B)[1] == 0xFF    # 0 == 0 in upper lanes
    gt = packed.cmp_mask(np.uint64(5), np.uint64(9), ElemType.B, "gt")
    assert int(gt) == 0


def test_cmp_mask_bad_op():
    with pytest.raises(ValueError):
        packed.cmp_mask(np.uint64(0), np.uint64(0), ElemType.B, "lt")


def test_select_mixes_bits():
    m = np.uint64(0x00FF00FF00FF00FF)
    a = np.uint64(0x1111111111111111)
    b = np.uint64(0x2222222222222222)
    assert int(packed.select(m, a, b)) == 0x2211221122112211


@given(words, words, words)
@settings(max_examples=40)
def test_select_identity(m, a, b):
    out = int(packed.select(np.uint64(m), np.uint64(a), np.uint64(b)))
    assert out == ((m & a) | (~m & b)) & ((1 << 64) - 1)


# --- shifts --------------------------------------------------------------------------------------

@pytest.mark.parametrize("elem", ELEMS + [ElemType.Q])
def test_shift_left_then_right(elem):
    word = np.uint64(0x0101010101010101)
    left = packed.shift(word, 1, elem, "sll")
    back = packed.shift(left, 1, elem, "srl")
    assert int(back) == int(word)


def test_shift_sra_sign_fills():
    out = packed.shift(np.uint64(0x8000), 15, ElemType.H, "sra")
    assert lanes_of(out, ElemType.H, True)[0] == -1


def test_shift_overlong_logical_zeroes():
    assert int(packed.shift(np.uint64(0xFF), 8, ElemType.B, "srl")) == 0
    assert int(packed.shift(np.uint64(0xFF), 9, ElemType.B, "sll")) == 0


def test_shift_negative_count_rejected():
    with pytest.raises(ValueError):
        packed.shift(np.uint64(1), -1, ElemType.B, "sll")


def test_shift_bad_kind_rejected():
    with pytest.raises(ValueError):
        packed.shift(np.uint64(1), 1, ElemType.B, "ror")


# --- pack / unpack ------------------------------------------------------------------------------------

def test_pack_sat_signed():
    a = packed.from_lanes(np.asarray([[300, -300, 5, -5]], dtype=np.int64))[0]
    out = lanes_of(packed.pack_sat(a, a, ElemType.H, True), ElemType.B, True)
    assert list(out[:4]) == [127, -128, 5, -5]


def test_pack_sat_unsigned():
    a = packed.from_lanes(np.asarray([[300, -300, 5, 200]], dtype=np.int64))[0]
    out = lanes_of(packed.pack_sat(a, a, ElemType.H, False), ElemType.B)
    assert list(out[:4]) == [255, 0, 5, 200]


def test_unpack_interleave_low_bytes():
    a = np.uint64(0x0807060504030201)
    b = np.uint64(0x1817161514131211)
    out = lanes_of(packed.unpack_interleave(a, b, ElemType.B, high=False), ElemType.B)
    assert list(out) == [0x01, 0x11, 0x02, 0x12, 0x03, 0x13, 0x04, 0x14]


def test_unpack_interleave_high_bytes():
    a = np.uint64(0x0807060504030201)
    b = np.uint64(0x1817161514131211)
    out = lanes_of(packed.unpack_interleave(a, b, ElemType.B, high=True), ElemType.B)
    assert list(out) == [0x05, 0x15, 0x06, 0x16, 0x07, 0x17, 0x08, 0x18]


def test_unpack_promotion_idiom():
    """punpcklb with zero promotes bytes to halves."""
    a = np.uint64(0x0807060504030201)
    out = lanes_of(packed.unpack_interleave(a, np.uint64(0), ElemType.B, False),
                   ElemType.H)
    assert list(out) == [1, 2, 3, 4]


def test_shuffle_halves():
    a = np.uint64(0x0004_0003_0002_0001)
    out = lanes_of(packed.shuffle_halves(a, (0, 1, 0, 1)), ElemType.H)
    assert list(out) == [1, 2, 1, 2]


def test_shuffle_rejects_bad_order():
    with pytest.raises(ValueError):
        packed.shuffle_halves(np.uint64(0), (0, 1, 2))
    with pytest.raises(ValueError):
        packed.shuffle_halves(np.uint64(0), (0, 1, 2, 4))


# --- reductions / helpers --------------------------------------------------------------------------------

@pytest.mark.parametrize("elem", ELEMS)
def test_horizontal_sum(elem):
    word = np.uint64(0x0101010101010101)
    total = int(packed.horizontal_sum(word, elem))
    lanes = lanes_of(word, elem)
    assert total == int(lanes.sum())


def test_word_bytes_roundtrip():
    word = packed.word_from_bytes(bytes([1, 2, 3]))
    assert packed.word_to_bytes(word) == bytes([1, 2, 3, 0, 0, 0, 0, 0])


def test_word_from_bytes_too_long():
    with pytest.raises(ValueError):
        packed.word_from_bytes(bytes(range(9)))


def test_saturate_unsigned_range():
    vals = np.asarray([-5, 0, 255, 300], dtype=np.int64)
    out = packed.saturate(vals, ElemType.B, signed=False)
    assert list(out) == [0, 0, 255, 255]


# --- ElemType.Q saturation bounds -----------------------------------------------------------------------
#
# Q lanes are full 64-bit words: int64 intermediates would wrap before
# saturation could see the overflow, so these operations widen through
# Python-int (object) arithmetic.  Pin the exact bound behaviour.

U64_MAX = (1 << 64) - 1
I64_MAX = (1 << 63) - 1
I64_MIN = -(1 << 63)


def u64(value: int) -> int:
    """Two's-complement image of a (possibly negative) 64-bit value."""
    return value & U64_MAX


def test_q_add_sat_unsigned_saturates_at_u64_max():
    assert int(packed.add_sat(U64_MAX, 1, ElemType.Q, signed=False)) == U64_MAX
    assert int(packed.add_sat(1 << 63, 1 << 63, ElemType.Q,
                              signed=False)) == U64_MAX


def test_q_add_sat_signed_saturates_at_both_bounds():
    assert int(packed.add_sat(u64(I64_MAX), 1, ElemType.Q,
                              signed=True)) == u64(I64_MAX)
    assert int(packed.add_sat(u64(I64_MIN), u64(-1), ElemType.Q,
                              signed=True)) == u64(I64_MIN)


def test_q_sub_sat_bounds():
    assert int(packed.sub_sat(0, 1, ElemType.Q, signed=False)) == 0
    assert int(packed.sub_sat(u64(I64_MIN), 1, ElemType.Q,
                              signed=True)) == u64(I64_MIN)
    assert int(packed.sub_sat(u64(I64_MAX), u64(-1), ElemType.Q,
                              signed=True)) == u64(I64_MAX)


def test_q_wrap_is_modular_at_bounds():
    assert int(packed.add_wrap(U64_MAX, 1, ElemType.Q)) == 0
    assert int(packed.sub_wrap(0, 1, ElemType.Q)) == U64_MAX


def test_q_mul_full_precision():
    assert int(packed.mul_low(u64(-3), 5, ElemType.Q)) == u64(-15)
    # High half of (-1) * 1 is -1: all ones after repacking.
    assert int(packed.mul_high(u64(-1), 1, ElemType.Q,
                               signed=True)) == U64_MAX
    # 2^62 * 4 = 2^64: low half 0, signed high half 1.
    assert int(packed.mul_low(1 << 62, 4, ElemType.Q)) == 0
    assert int(packed.mul_high(1 << 62, 4, ElemType.Q, signed=True)) == 1


def test_q_abs_saturates_int64_min():
    assert int(packed.abs_packed(u64(I64_MIN), ElemType.Q)) == I64_MAX
    assert int(packed.abs_packed(u64(-7), ElemType.Q)) == 7


def test_q_avg_round_no_overflow():
    assert int(packed.avg_round(U64_MAX, U64_MAX, ElemType.Q)) == U64_MAX
    assert int(packed.avg_round(U64_MAX, U64_MAX - 1, ElemType.Q)) == U64_MAX


def test_q_minmax_signed_across_zero():
    assert int(packed.minmax(u64(-5), 3, ElemType.Q, signed=True,
                             take_max=True)) == 3
    assert int(packed.minmax(u64(-5), 3, ElemType.Q, signed=True,
                             take_max=False)) == u64(-5)


def test_q_absdiff_unsigned_bounds():
    assert int(packed.absdiff(U64_MAX, 0, ElemType.Q)) == U64_MAX
    assert int(packed.absdiff(0, U64_MAX, ElemType.Q)) == U64_MAX


def test_narrow_elems_unchanged_by_wide_path():
    """Sub-64-bit lanes still take the fast int64 path (dtype check)."""
    la, lb = packed._binary_wide(np.uint64(5), np.uint64(6), ElemType.H,
                                 signed=True)
    assert la.dtype == np.int64 and lb.dtype == np.int64
    lq, _ = packed._binary_wide(np.uint64(5), np.uint64(6), ElemType.Q,
                                signed=True)
    assert lq.dtype == object
