"""Tests for the out-of-order core, branch predictors and functional units."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import AlphaBuilder, MomBuilder
from repro.cpu import Core, machine_config
from repro.cpu.bpred import BimodalPredictor, BranchTargetBuffer
from repro.cpu.config import WAYS, register_file_specs
from repro.cpu.funit import FuPool, fu_family, needs_complex_unit
from repro.cpu.config import FuConfig
from repro.isa.model import InstrClass, RegPool
from repro.isa.regfile_area import table2_report
from repro.memsys import PerfectMemory


def run_trace(builder, way=4, isa=None, latency=1):
    isa = isa or builder.isa_name
    cfg = machine_config(way, isa)
    mem = PerfectMemory(latency, cfg.mem_ports, cfg.mem_port_width)
    return Core(cfg, mem).run(builder.trace)


# --- branch prediction ------------------------------------------------------------

def test_bimodal_initial_weakly_taken():
    p = BimodalPredictor(16)
    assert p.predict(0) is True


def test_bimodal_trains_not_taken():
    p = BimodalPredictor(16)
    for _ in range(3):
        p.update(5, False)
    assert p.predict(5) is False


def test_bimodal_counts_mispredicts():
    p = BimodalPredictor(16)
    p.predict_and_update(1, False)   # predicted taken -> mispredict
    p.predict_and_update(1, False)   # weakly not-taken now -> correct
    assert p.mispredicts == 1 and p.lookups == 2
    assert 0 < p.accuracy < 1


@given(st.lists(st.booleans(), min_size=1, max_size=200))
@settings(max_examples=30)
def test_bimodal_counters_bounded(outcomes):
    p = BimodalPredictor(8)
    for taken in outcomes:
        p.predict_and_update(3, taken)
    assert all(0 <= c <= 3 for c in p.counters)


def test_bimodal_rejects_non_power_of_two():
    with pytest.raises(ValueError):
        BimodalPredictor(12)


def test_btb_miss_then_hit():
    btb = BranchTargetBuffer(16)
    assert btb.lookup_insert(5) is False
    assert btb.lookup_insert(5) is True
    assert btb.misses == 1 and btb.hits == 1


def test_btb_aliasing_evicts():
    btb = BranchTargetBuffer(16)
    btb.lookup_insert(5)
    btb.lookup_insert(5 + 16)     # same index, different tag
    assert btb.lookup_insert(5) is False


# --- functional units -----------------------------------------------------------------

def test_fu_simple_cannot_run_complex():
    pool = FuPool(FuConfig(simple=1, complex_=0))
    assert pool.try_issue(True, 0, 1, "mulq", 6) is None
    assert pool.try_issue(False, 0, 1, "addq", 1) == 1


def test_fu_complex_runs_both():
    pool = FuPool(FuConfig(simple=0, complex_=1))
    assert pool.try_issue(True, 0, 1, "mulq", 6) == 6
    # pipelined: next op can issue the following cycle
    assert pool.try_issue(False, 1, 1, "addq", 1) == 2


def test_fu_divide_not_pipelined():
    pool = FuPool(FuConfig(simple=0, complex_=1))
    assert pool.try_issue(True, 0, 1, "divq", 30) is not None
    assert pool.try_issue(False, 1, 1, "addq", 1) is None     # unit busy


def test_fu_vector_occupancy():
    pool = FuPool(FuConfig(simple=0, complex_=1), lanes=1)
    done = pool.try_issue(True, 0, 16, "pmaddah", 4)
    assert done == 0 + 16 - 1 + 4
    assert pool.try_issue(False, 5, 1, "paddb", 1) is None    # still streaming


def test_fu_lanes_halve_occupancy():
    pool = FuPool(FuConfig(simple=0, complex_=1), lanes=2)
    assert pool.try_issue(True, 0, 16, "pmaddah", 4) == 8 - 1 + 4


def test_fu_family_mapping():
    assert fu_family(InstrClass.INT_COMPLEX) == "int"
    assert fu_family(InstrClass.FP_SIMPLE) == "fp"
    assert fu_family(InstrClass.MED_COMPLEX) == "med"
    assert fu_family(InstrClass.LOAD) is None
    assert needs_complex_unit(InstrClass.MED_COMPLEX)
    assert not needs_complex_unit(InstrClass.MED_SIMPLE)


# --- machine configurations (Table 1 / Table 2) --------------------------------------------

@pytest.mark.parametrize("way,rob,lsq", [(1, 8, 4), (2, 16, 8),
                                         (4, 32, 16), (8, 64, 32)])
def test_table1_rob_lsq(way, rob, lsq):
    cfg = machine_config(way, "alpha")
    assert cfg.rob_size == rob and cfg.lsq_size == lsq


def test_table1_predictors():
    assert machine_config(1, "alpha").bimodal_entries == 512
    assert machine_config(8, "alpha").bimodal_entries == 16384
    assert machine_config(1, "alpha").btb_entries == 64
    assert machine_config(8, "alpha").btb_entries == 1024


def test_mom_8way_lane_organization():
    cfg = machine_config(8, "mom")
    assert cfg.med_units.total == 2 and cfg.med_lanes == 2
    assert cfg.mem_ports == 2 and cfg.mem_port_width == 2
    mmx = machine_config(8, "mmx")
    assert mmx.med_units.total == 4 and mmx.med_lanes == 1
    assert mmx.mem_ports == 4


def test_invalid_config_rejected():
    with pytest.raises(ValueError):
        machine_config(3, "alpha")
    with pytest.raises(ValueError):
        machine_config(4, "sse")


def test_table2_register_files():
    cfg = machine_config(4, "mom")
    assert (cfg.med_logical, cfg.med_phys) == (16, 20)
    assert (cfg.acc_logical, cfg.acc_phys) == (2, 4)
    mdmx = machine_config(4, "mdmx")
    assert (mdmx.med_logical, mdmx.med_phys) == (32, 52)
    assert (mdmx.acc_logical, mdmx.acc_phys) == (4, 16)


def test_table2_sizes_and_areas_match_paper():
    reports = table2_report(register_file_specs)
    base = reports["mmx"].area_units
    assert reports["mmx"].size_kbytes == pytest.approx(0.5, abs=0.01)
    assert reports["mdmx"].size_kbytes == pytest.approx(0.78, abs=0.01)
    assert reports["mom"].size_kbytes == pytest.approx(2.59, abs=0.01)
    assert reports["mdmx"].normalized(base) == pytest.approx(1.19, abs=0.02)
    assert reports["mom"].normalized(base) == pytest.approx(0.87, abs=0.01)


def test_phys_limit_row_units():
    mom = machine_config(4, "mom")
    assert mom.phys_limit(RegPool.MED) == 4 * 16
    assert mom.phys_limit(RegPool.ACC) == 2
    mmx = machine_config(4, "mmx")
    assert mmx.phys_limit(RegPool.MED) == 32


# --- the cycle-level core -----------------------------------------------------------------

def test_empty_trace_zero_cycles():
    b = AlphaBuilder()
    result = run_trace(b)
    assert result.cycles == 0 and result.instructions == 0


def test_single_instruction_latency():
    b = AlphaBuilder()
    x = b.ireg(1)
    b.addi(x, x, 1)
    result = run_trace(b, way=1)
    # fetch(1) + front(2) + issue + complete + commit: small but nonzero
    assert 3 <= result.cycles <= 8


def test_ipc_bounded_by_width():
    for way in WAYS:
        b = AlphaBuilder()
        regs = [b.ireg(i) for i in range(8)]
        for _ in range(50):
            for i, r in enumerate(regs):
                b.addi(r, r, 1)
        result = run_trace(b, way=way)
        assert result.ipc <= way + 1e-9


def test_independent_work_scales_with_width():
    def build():
        b = AlphaBuilder()
        regs = [b.ireg(i) for i in range(8)]
        for _ in range(100):
            for r in regs:
                b.addi(r, r, 1)
        return b
    narrow = run_trace(build(), way=1).cycles
    wide = run_trace(build(), way=4).cycles
    assert narrow > 2.5 * wide


def test_dependence_chain_serializes():
    b = AlphaBuilder()
    x = b.ireg(0)
    for _ in range(100):
        b.addi(x, x, 1)      # fully serial
    result = run_trace(b, way=8)
    assert result.cycles >= 100        # one per cycle at best


def test_long_latency_chain():
    b = AlphaBuilder()
    x = b.ireg(3)
    for _ in range(20):
        b.mulq(x, x, x)      # serial multiplies, latency 6
    result = run_trace(b, way=8)
    assert result.cycles >= 20 * 6


def test_mispredicted_branches_cost_cycles():
    def build(pattern):
        b = AlphaBuilder()
        site = b.site()
        x = b.ireg(0)
        for taken in pattern:
            b.li(x, 1 if taken else 0)
            b.bne(x, site)
            b.addi(x, x, 1)
        return b
    steady = run_trace(build([True] * 200), way=4)
    noisy = run_trace(build([True, False] * 100), way=4)
    assert noisy.cycles > steady.cycles
    assert noisy.branch_mispredicts > steady.branch_mispredicts


def test_branch_stats_reported():
    b = AlphaBuilder()
    site = b.site()
    x = b.ireg(1)
    for _ in range(10):
        b.bne(x, site)
    result = run_trace(b)
    assert result.branch_lookups == 10


def test_store_then_load_functionally_visible():
    b = AlphaBuilder()
    addr = b.mem.alloc(8)
    base, v, out = b.ireg(addr), b.ireg(42), b.ireg()
    b.stq(v, base)
    b.ldq(out, base)
    assert out.value == 42
    result = run_trace(b)
    assert result.instructions == len(b.trace)


def test_memory_latency_slows_loads():
    def build():
        b = AlphaBuilder()
        addr = b.mem.alloc(1024)
        base, v = b.ireg(addr), b.ireg()
        acc = b.ireg(0)
        for i in range(64):
            b.ldq(v, base, 8 * (i % 16))
            b.addq(acc, acc, v)
        return b
    fast = run_trace(build(), latency=1).cycles
    slow = run_trace(build(), latency=50).cycles
    assert slow > 2 * fast


def test_mom_vector_occupancy_counts():
    b = MomBuilder()
    data = np.zeros(256, dtype=np.uint8)
    addr = b.mem.alloc_array(data)
    base, stride = b.ireg(addr), b.ireg(16)
    x, y, z = b.mreg(), b.mreg(), b.mreg()
    b.setvli(16)
    b.momldq(x, base, stride)
    b.momldq(y, base, stride)
    for _ in range(8):
        b.paddb(z, x, y)
    result = run_trace(b, way=4)
    # eight VL=16 adds on two single-lane units: >= 64 busy cycles
    assert result.cycles >= 64


def test_mom_rename_cap_throttles():
    """More in-flight matrix rows than 4 spare registers hold must stall."""
    b = MomBuilder()
    regs = [b.mreg() for _ in range(10)]
    b.setvli(16)
    for _ in range(20):
        for r in regs:
            b.mommov(r, regs[0])
    result = run_trace(b, way=8)
    assert result.rename_stall_events > 0


def test_committed_equals_trace_length():
    b = AlphaBuilder()
    x = b.ireg(0)
    site = b.site()
    for i in range(50):
        b.addi(x, x, 1)
        if i % 5 == 4:
            b.bne(x, site)
    result = run_trace(b)
    assert result.instructions == len(b.trace)


@given(st.integers(1, 60), st.sampled_from([1, 2, 4, 8]))
@settings(max_examples=20, deadline=None)
def test_cycle_lower_bound_property(n, way):
    """cycles >= instructions / width, always."""
    b = AlphaBuilder()
    regs = [b.ireg(i) for i in range(6)]
    for i in range(n):
        b.addi(regs[i % 6], regs[i % 6], 1)
    result = run_trace(b, way=way)
    assert result.cycles >= n / way
    assert result.instructions == n
