"""Tests for the calibrated scalar-section synthesizer."""

import pytest

from repro import AlphaBuilder
from repro.emulib.scalar_section import (SectionProfile, SectionTally,
                                         emit_scalar_section)
from repro.isa.model import InstrClass


def histogram(trace):
    hist = {}
    for ins in trace:
        hist[ins.iclass] = hist.get(ins.iclass, 0) + 1
    return hist


def test_profile_total():
    p = SectionProfile(name="x", loads=10, stores=5, alu=20, muls=2,
                       loop_branches=3, data_branches=4)
    assert p.total_instructions() == 44


def test_profile_scaling():
    p = SectionProfile(name="x", loads=100, alu=50)
    half = p.scaled(0.5)
    assert half.loads == 50 and half.alu == 25
    assert half.name == p.name


def test_tally_accumulates():
    tally = SectionTally()
    tally.count(loads=3, alu=5)
    tally.count(loads=2, data_branches=1)
    assert tally.profile.loads == 5
    assert tally.profile.alu == 5
    assert tally.profile.data_branches == 1


def test_emission_matches_profile_shape():
    b = AlphaBuilder()
    p = SectionProfile(name="vlc", loads=40, stores=20, alu=120, muls=8,
                       loop_branches=10, data_branches=12, footprint=1024)
    emit_scalar_section(b, p, seed=3)
    hist = histogram(b.trace)
    assert hist[InstrClass.LOAD] == 40
    assert hist[InstrClass.STORE] == 20
    assert hist[InstrClass.BRANCH] == 22
    assert hist[InstrClass.INT_COMPLEX] == 8
    # ALU within tolerance (dependent adds + branch setup inflate slightly)
    total = len(b.trace)
    assert p.total_instructions() <= total <= p.total_instructions() * 1.4


def test_emission_deterministic():
    traces = []
    for _ in range(2):
        b = AlphaBuilder()
        emit_scalar_section(b, SectionProfile(name="x", alu=50,
                                              data_branches=20), seed=9)
        traces.append([(i.op.name, i.taken) for i in b.trace])
    assert traces[0] == traces[1]


def test_data_branches_are_noisy():
    b = AlphaBuilder()
    emit_scalar_section(b, SectionProfile(name="x", data_branches=64,
                                          alu=64), seed=5)
    outcomes = [i.taken for i in b.trace if i.iclass == InstrClass.BRANCH]
    assert 0.2 < sum(outcomes) / len(outcomes) < 0.8


def test_empty_profile_emits_nothing():
    b = AlphaBuilder()
    emit_scalar_section(b, SectionProfile(name="empty"))
    assert len(b.trace) == 0


def test_loads_walk_the_footprint():
    b = AlphaBuilder()
    emit_scalar_section(b, SectionProfile(name="x", loads=64, alu=64,
                                          footprint=256), seed=1)
    addrs = {i.addr for i in b.trace if i.iclass == InstrClass.LOAD}
    assert len(addrs) > 4
    span = max(addrs) - min(addrs)
    assert span < 256


def test_registers_released_after_emission():
    b = AlphaBuilder()
    before = b.int_alloc.in_use
    emit_scalar_section(b, SectionProfile(name="x", alu=30), seed=1)
    assert b.int_alloc.in_use == before
