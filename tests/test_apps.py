"""Application tests: cross-ISA bit-exactness and end-to-end correctness."""

import numpy as np
import pytest

from repro.apps import APP_ISAS, APP_ORDER, APPS, psnr
from repro.apps.reference import (rgb2ycc_ref, transform8_ref, upsample2_ref,
                                  ycc2rgb_ref, quant_ref, dequant_ref)
from repro.apps.stages import FDCT_MAT, IDCT_MAT
from repro.apps.workloads import pcm_audio, rgb_image, video_frames


@pytest.fixture(scope="module")
def built():
    return {
        (name, isa): APPS[name].build(isa, 1)
        for name in APP_ORDER for isa in APP_ISAS
    }


def test_registry():
    # The Figure 7 grid (APP_ORDER) stays on the mini-frame workloads;
    # the frame-scale mpeg2_frame target registers alongside them.
    assert set(APP_ORDER) | {"mpeg2_frame"} == set(APPS)
    assert len(APPS) == 6
    assert "gsm_decode" not in APPS      # dropped, as in the paper
    assert APPS["mpeg2_frame"].description.startswith("MPEG-2")


@pytest.mark.parametrize("app", APP_ORDER)
def test_outputs_bit_exact_across_isas(built, app):
    base = built[(app, "alpha")].outputs
    for isa in ("mmx", "mom"):
        other = built[(app, isa)].outputs
        assert set(other) == set(base)
        for key in base:
            assert np.array_equal(base[key], other[key]), (app, isa, key)


@pytest.mark.parametrize("app", ["mpeg2_decode", "jpeg_decode"])
def test_decoders_match_reference(built, app):
    outputs = built[(app, "alpha")].outputs
    assert np.array_equal(outputs["decoded"], outputs["golden"])


def test_mpeg2_decoder_reproduces_encoder_recon(built):
    enc = built[("mpeg2_encode", "alpha")].outputs["recon"]
    dec = built[("mpeg2_decode", "alpha")].outputs["decoded"]
    assert np.array_equal(enc, dec)


def test_mpeg2_compression_quality(built):
    frames = video_frames()
    recon = built[("mpeg2_encode", "alpha")].outputs["recon"][0]
    assert psnr(recon, frames[1]) > 25.0


def test_jpeg_roundtrip_quality(built):
    r, g, b = rgb_image()
    decoded = built[("jpeg_decode", "alpha")].outputs["decoded"]
    quality = np.mean([psnr(decoded[i], p) for i, p in enumerate((r, g, b))])
    assert quality > 20.0


@pytest.mark.parametrize("app", APP_ORDER)
def test_instruction_count_ordering(built, app):
    alpha = len(built[(app, "alpha")].trace)
    mmx = len(built[(app, "mmx")].trace)
    mom = len(built[(app, "mom")].trace)
    assert mom < mmx < alpha


@pytest.mark.parametrize("app", APP_ORDER)
def test_vector_fraction_sensible(built, app):
    """Scalar Alpha runs are almost fully 'vectorizable phase' (the same
    functions, scalar-coded); media runs shrink those phases, so their
    share of the total drops."""
    alpha = built[(app, "alpha")].vector_fraction()
    mom = built[(app, "mom")].vector_fraction()
    assert 0.6 < alpha <= 1.0
    assert mom < alpha


def test_gsm_finds_pitch_lag(built):
    """The synthesized audio has a 55-sample pitch; LTP should find lags
    clustered near it (or a harmonic) rather than scattering randomly."""
    lags = built[("gsm_encode", "alpha")].outputs["lags"]
    assert len(lags) > 0
    near = np.abs(lags - 55) <= 3
    assert near.mean() > 0.5


def test_phase_markers_cover_trace(built):
    app = built[("mpeg2_encode", "alpha")]
    assert sum(app.phases.values()) == len(app.trace)
    assert "motion_estimation" in app.phases
    assert any(k.startswith("scalar_") for k in app.phases)


# --- reference helpers ----------------------------------------------------------

def test_transform_ref_roundtrip():
    rng = np.random.default_rng(0)
    pixels = rng.integers(-128, 128, (8, 8)).astype(np.int16)
    coef = transform8_ref(pixels, FDCT_MAT, clamp=False)
    back = transform8_ref(coef, IDCT_MAT, clamp=True)
    assert np.abs(back.astype(int) - pixels.astype(int)).max() <= 2


def test_quant_dequant_ref():
    coefs = np.asarray([[-33, 33, 15, -15, 0, 1, -1, 100]] * 8, dtype=np.int16)
    q = quant_ref(coefs)
    assert q[0][0] == -2 and q[0][1] == 2       # symmetric around zero
    d = dequant_ref(q)
    assert d[0][0] == -32 and d[0][7] == 96


def test_colour_conversion_ref_ranges():
    rng = np.random.default_rng(1)
    r = rng.integers(0, 256, 256, dtype=np.uint8)
    g = rng.integers(0, 256, 256, dtype=np.uint8)
    b = rng.integers(0, 256, 256, dtype=np.uint8)
    y, cb, cr = rgb2ycc_ref(r, g, b)
    for plane in (y, cb, cr):
        assert plane.dtype == np.uint8
    r2, g2, b2 = ycc2rgb_ref(y, cb, cr)
    # lossy but bounded: the 8-bit conversion pair stays within ~12 levels
    assert np.abs(r2.astype(int) - r.astype(int)).mean() < 12


def test_upsample_ref_shape():
    plane = np.arange(16, dtype=np.uint8).reshape(4, 4)
    up = upsample2_ref(plane)
    assert up.shape == (8, 8)
    assert up[1][1] == plane[0][0]


# --- workloads ------------------------------------------------------------------------

def test_video_frames_move():
    frames = video_frames(count=3)
    assert frames.shape == (3, 32, 32)
    assert not np.array_equal(frames[0], frames[1])


def test_rgb_image_planes():
    r, g, b = rgb_image()
    assert r.shape == (32, 32) and r.dtype == np.uint8


def test_pcm_audio_range_and_pitch():
    audio = pcm_audio(frames=2)
    assert audio.shape == (320,)
    assert audio.min() >= -4096 and audio.max() <= 4095
    assert np.abs(audio.astype(np.int64)).max() > 500   # not silence


def test_mpeg2_frame_geometry_is_isa_invariant():
    """The frame-geometry parameterization of the MPEG-2 encoder stays
    bit-exact across ISAs on a non-square mini-frame (a width/height swap
    anywhere in the addressing would break this); the registered
    mpeg2_frame target is this same builder at 720x480."""
    from repro.apps.mpeg2 import _build_encode
    from repro.apps.workloads import video_frames

    width, height = 48, 32
    frames = video_frames(width, height, count=2)
    base = _build_encode("alpha", frames, width, height)
    assert base.outputs["recon"].shape == (1, height, width)
    for isa in ("mmx", "mom"):
        other = _build_encode(isa, frames, width, height)
        assert (other.outputs["recon"] == base.outputs["recon"]).all()
        assert len(other.trace) < len(base.trace)       # DLP fetch economy
