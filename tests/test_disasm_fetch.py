"""Tests for the trace disassembler and the fetch-pressure study."""

import numpy as np

from repro import AlphaBuilder, MomBuilder
from repro.emulib.disasm import (class_mix_report, disassemble, format_instr,
                                 format_operand, summarize)
from repro.emulib.trace import reg
from repro.eval.fetch_pressure import mom_fetch_advantage, run
from repro.isa.model import RegPool


def test_format_operand_pools():
    assert format_operand(reg(RegPool.INT, 5)) == "r5"
    assert format_operand(reg(RegPool.MED, 3)) == "m3"
    assert format_operand(reg(RegPool.ACC, 0)) == "acc0"
    assert format_operand(reg(RegPool.FP, 7)) == "f7"


def test_format_scalar_instr():
    b = AlphaBuilder()
    x, y, z = b.ireg(1), b.ireg(2), b.ireg()
    b.addq(z, x, y)
    line = format_instr(b.trace[-1])
    assert line.startswith("addq")
    assert "r" in line


def test_format_memory_instr_shows_address():
    b = AlphaBuilder()
    addr = b.mem.alloc(8)
    base, v = b.ireg(addr), b.ireg()
    b.ldq(v, base)
    line = format_instr(b.trace[-1])
    assert f"@{addr:#x}" in line


def test_format_vector_instr_shows_stride():
    b = MomBuilder()
    data = np.zeros(128, dtype=np.uint8)
    a = b.mem.alloc_array(data)
    base, stride = b.ireg(a), b.ireg(8)
    m = b.mreg()
    b.setvli(16)
    b.momldq(m, base, stride)
    line = format_instr(b.trace[-1])
    assert "+8*16" in line


def test_format_branch_shows_outcome():
    b = AlphaBuilder()
    cond = b.ireg(1)
    b.bne(cond, b.site())
    line = format_instr(b.trace[-1])
    assert "taken" in line and "site=" in line


def test_disassemble_listing():
    b = AlphaBuilder()
    x = b.ireg(0)
    for _ in range(5):
        b.addi(x, x, 1)
    text = disassemble(b.trace)
    assert text.count("\n") == 5
    assert "isa=alpha" in text
    short = disassemble(b.trace, start=1, count=2)
    assert short.count("lda") == 2


def test_summarize_counts():
    b = MomBuilder()
    data = np.zeros(128, dtype=np.uint8)
    a = b.mem.alloc_array(data)
    base, stride = b.ireg(a), b.ireg(8)
    m, m2 = b.mreg(), b.mreg()
    b.setvli(16)
    b.momldq(m, base, stride)
    b.paddb(m2, m, m)
    stats = summarize(b.trace)
    assert stats["instructions"] == 3   # setvli + momldq + paddb
    assert stats["ops_per_instruction"] > 10
    assert stats["avg_vector_length"] == 16.0


def test_summarize_empty():
    b = AlphaBuilder()
    assert summarize(b.trace) == {"instructions": 0}


def test_class_mix_report():
    b = AlphaBuilder()
    x = b.ireg(0)
    b.addi(x, x, 1)
    report = class_mix_report(b.trace)
    assert "INT_SIMPLE" in report


def test_fetch_pressure_study():
    results = run(kernels=("compensation", "motion1"), quiet=True)
    comp = results["compensation"]
    # ops/instruction ordering: MOM >> MMX > scalar (the paper's
    # "order of magnitude more operations per instruction").
    assert comp["mom"].ops_per_instruction > 4 * comp["mmx"].ops_per_instruction
    assert comp["mmx"].ops_per_instruction > comp["alpha"].ops_per_instruction
    # Measured attribution: the SIMD machine is essentially 100%
    # fetch-bound at 1-way, MOM spends most cycles elsewhere.
    assert comp["mmx"].fetch_bound_share > 0.9
    assert comp["mom"].fetch_bound_share < 0.5
    # MOM retains the most of its wide-machine performance on 1-way.
    motion = results["motion1"]
    assert motion["mom"].retention_1way >= motion["mmx"].retention_1way
    ratios = mom_fetch_advantage(results)
    assert ratios["motion1"] > 8       # "an order of magnitude"
