"""Builder tests: functional semantics and trace capture for all four ISAs."""

import numpy as np
import pytest

from repro import AlphaBuilder, MdmxBuilder, MmxBuilder, MomBuilder
from repro.core.matrix import MomRegister
from repro.emulib.alpha_builder import emit_abs_diff, emit_clamp
from repro.emulib.base_builder import wrap64
from repro.emulib.trace import reg_index, reg_pool
from repro.isa.model import ElemType, InstrClass, RegPool


# --- scalar baseline ---------------------------------------------------------------

def test_wrap64():
    assert wrap64(1 << 63) == -(1 << 63)
    assert wrap64((1 << 64) - 1) == -1
    assert wrap64(42) == 42


def test_scalar_arithmetic_values():
    b = AlphaBuilder()
    x, y, z = b.ireg(10), b.ireg(3), b.ireg()
    b.addq(z, x, y)
    assert z.value == 13
    b.subq(z, x, y)
    assert z.value == 7
    b.mulq(z, x, y)
    assert z.value == 30
    b.sll(z, x, 2)
    assert z.value == 40
    b.sra(z, b.ireg(-8), 1)
    assert z.value == -4


def test_scalar_compare_and_cmov():
    b = AlphaBuilder()
    x, y, t = b.ireg(5), b.ireg(9), b.ireg()
    b.cmplt(t, x, y)
    assert t.value == 1
    dst = b.ireg(100)
    b.cmovne(dst, t, y)       # t != 0 -> dst = y
    assert dst.value == 9
    b.li(t, 0)
    b.cmovne(dst, t, x)       # t == 0 -> unchanged
    assert dst.value == 9


def test_logical_ops():
    b = AlphaBuilder()
    x, y, z = b.ireg(0b1100), b.ireg(0b1010), b.ireg()
    b.and_(z, x, y)
    assert z.value == 0b1000
    b.bis(z, x, y)
    assert z.value == 0b1110
    b.xor(z, x, y)
    assert z.value == 0b0110


def test_sext_helpers():
    b = AlphaBuilder()
    x, z = b.ireg(0xFF), b.ireg()
    b.sextb(z, x)
    assert z.value == -1
    b.li(x, 0x8000)
    b.sextw(z, x)
    assert z.value == -0x8000


def test_memory_roundtrip_all_widths():
    b = AlphaBuilder()
    addr = b.mem.alloc(64)
    base, v, out = b.ireg(addr), b.ireg(-2), b.ireg()
    b.stq(v, base, 0)
    b.ldq(out, base, 0)
    assert out.value == -2
    b.li(v, 0x1234)
    b.stw(v, base, 8)
    b.ldwu(out, base, 8)
    assert out.value == 0x1234
    b.stb(v, base, 16)
    b.ldbu(out, base, 16)
    assert out.value == 0x34


def test_branch_outcome_derived_from_value():
    b = AlphaBuilder()
    cond = b.ireg(5)
    site = b.site()
    assert b.bne(cond, site) is True
    b.li(cond, 0)
    assert b.bne(cond, site) is False
    assert b.beq(cond, site) is True
    b.li(cond, -1)
    assert b.blt(cond, site) is True
    assert b.bge(cond, site) is False


def test_counted_loop_emits_bookkeeping():
    b = AlphaBuilder()
    total = b.ireg(0)
    for _ in b.counted_loop(4):
        b.addi(total, total, 1)
    assert total.value == 4
    branches = [i for i in b.trace if i.iclass == InstrClass.BRANCH]
    assert len(branches) == 4
    assert [i.taken for i in branches] == [True, True, True, False]


def test_register_pool_exhaustion():
    b = AlphaBuilder(int_registers=2)
    b.ireg()
    r = b.ireg()
    with pytest.raises(RuntimeError):
        b.ireg()
    b.free(r)
    b.ireg()    # released slot is reusable


def test_trace_records_operands_and_addresses():
    b = AlphaBuilder()
    addr = b.mem.alloc(8)
    base, v = b.ireg(addr), b.ireg()
    b.ldq(v, base, 0)
    ins = b.trace[-1]
    assert ins.addr == addr and ins.nbytes == 8
    assert reg_pool(ins.dsts[0]) == RegPool.INT
    assert reg_index(ins.srcs[0]) == base.index


def test_abs_diff_idiom():
    b = AlphaBuilder()
    x, y, d, s = b.ireg(3), b.ireg(11), b.ireg(), b.ireg()
    emit_abs_diff(b, d, x, y, s)
    assert d.value == 8
    emit_abs_diff(b, d, y, x, s)
    assert d.value == 8


def test_clamp_idiom():
    b = AlphaBuilder()
    v, lo, hi, s = b.ireg(300), b.ireg(0), b.ireg(255), b.ireg()
    emit_clamp(b, v, lo, hi, s)
    assert v.value == 255
    b.li(v, -5)
    emit_clamp(b, v, lo, hi, s)
    assert v.value == 0


# --- MMX builder ----------------------------------------------------------------------

def test_mmx_load_uses_unaligned_opcode():
    b = MmxBuilder()
    addr = b.mem.alloc(32)
    base = b.ireg(addr + 1)
    r = b.mreg()
    b.m_ldq(r, base)
    assert b.trace[-1].op.name == "mmx_ldq_u"
    b.li(base, addr)
    b.m_ldq(r, base)
    assert b.trace[-1].op.name == "mmx_ldq"


def test_mmx_packed_add_value():
    b = MmxBuilder()
    x = b.mreg(0x00FF00FF00FF00FF)
    y = b.mreg(0x0101010101010101)
    z = b.mreg()
    b.paddusb(z, x, y)
    assert z.value == 0x01FF01FF01FF01FF  # 0xFF saturates, 0x00+1 = 1
    b.paddb(z, x, y)                      # wraparound: 0xFF+0x01 -> 0x00
    lanes = [(z.value >> (8 * i)) & 0xFF for i in range(8)]
    assert lanes == [0x00, 0x01, 0x00, 0x01, 0x00, 0x01, 0x00, 0x01]


def test_mmx_psadb_and_movd():
    b = MmxBuilder()
    x = b.mreg(0x0101010101010101)
    y = b.mreg(0)
    d = b.mreg()
    out = b.ireg()
    b.psadb(d, x, y)
    b.movd_from(out, d)
    assert out.value == 8


def test_mmx_pextr_pinsr():
    b = MmxBuilder()
    r = b.mreg(0x0004000300020001)
    out = b.ireg()
    b.pextrh(out, r, 2)
    assert out.value == 3
    b.li(out, 0xBEEF)
    b.pinsrh(r, out, 0)
    assert r.value & 0xFFFF == 0xBEEF


def test_mmx_media_register_limit():
    b = MmxBuilder()
    for _ in range(32):
        b.mreg()
    with pytest.raises(RuntimeError):
        b.mreg()


def test_mmx_three_operand_distinct_dest():
    """The paper extends MMX to three logical operands."""
    b = MmxBuilder()
    x, y, z = b.mreg(1), b.mreg(2), b.mreg()
    b.paddb(z, x, y)
    assert x.value == 1 and y.value == 2 and z.value == 3


# --- MDMX builder ------------------------------------------------------------------------

def test_mdmx_accumulate_and_readout():
    b = MdmxBuilder()
    x = b.mreg(0x0202020202020202)
    y = b.mreg(0x0101010101010101)
    acc = b.areg()
    b.paccsadb(acc, x, y)
    assert acc.value.lanes(ElemType.B) == [1] * 8
    out = b.mreg()
    b.racl(out, acc, ElemType.B)
    assert out.value == 0x0101010101010101


def test_mdmx_has_no_psadb():
    b = MdmxBuilder()
    x, y, z = b.mreg(), b.mreg(), b.mreg()
    with pytest.raises(KeyError):
        b.psadb(z, x, y)


def test_mdmx_accumulator_limit():
    b = MdmxBuilder()
    for _ in range(4):
        b.areg()
    with pytest.raises(RuntimeError):
        b.areg()


def test_mdmx_clracc_breaks_value():
    b = MdmxBuilder()
    acc = b.areg()
    x = b.mreg(5)
    b.paccaddb(acc, x, x)
    b.clracc(acc)
    assert acc.value.bits == 0
    assert b.trace[-1].op.name == "clracc"


def test_mdmx_acc_op_reads_and_writes_acc():
    b = MdmxBuilder()
    acc = b.areg()
    x = b.mreg(1)
    b.pmaddah(acc, x, x)
    ins = b.trace[-1]
    assert ins.dsts and reg_pool(ins.dsts[0]) == RegPool.ACC
    assert any(reg_pool(s) == RegPool.ACC for s in ins.srcs)


# --- MOM builder ---------------------------------------------------------------------------

def _loaded_matrix(b, data):
    addr = b.mem.alloc_array(data)
    base, stride = b.ireg(addr), b.ireg(8)
    reg = b.mreg()
    b.momldq(reg, base, stride)
    return reg


def test_mom_vl_bounds():
    b = MomBuilder()
    with pytest.raises(ValueError):
        b.setvli(17)
    b.setvli(16)
    assert b.vl == 16
    src = b.ireg(40)
    b.setvl(src)
    assert b.vl == 16      # clamped to MATRIX_ROWS


def test_mom_partial_vl_preserves_high_rows():
    b = MomBuilder()
    x, y, z = b.mreg(), b.mreg(), b.mreg()
    z.value = MomRegister(np.full(16, 7, dtype=np.uint64))
    x.value = MomRegister(np.ones(16, dtype=np.uint64))
    y.value = MomRegister(np.ones(16, dtype=np.uint64))
    b.setvli(4)
    b.paddb(z, x, y)
    assert z.value.get_row(0) == 2
    assert z.value.get_row(4) == 7     # untouched beyond VL


def test_mom_strided_load_element_addresses():
    b = MomBuilder()
    data = np.arange(256, dtype=np.uint8)
    addr = b.mem.alloc_array(data)
    base, stride = b.ireg(addr), b.ireg(16)
    reg = b.mreg()
    b.setvli(8)
    b.momldq(reg, base, stride)
    ins = b.trace[-1]
    assert ins.vl == 8 and ins.stride == 16
    assert ins.element_addresses() == [addr + 16 * i for i in range(8)]
    assert reg.value.get_row(1) == int.from_bytes(bytes(range(16, 24)), "little")


def test_mom_store_roundtrip():
    b = MomBuilder()
    src = _loaded_matrix(b, np.arange(128, dtype=np.uint8))
    out_addr = b.mem.alloc(128)
    base, stride = b.ireg(out_addr), b.ireg(8)
    b.setvli(16)
    b.momstq(src, base, stride)
    assert b.mem.load_array(out_addr, np.uint8, 128).tolist() == list(range(128))


def test_mom_row_ops():
    b = MomBuilder()
    reg = b.mreg()
    v = b.ireg(0xDEAD)
    b.mominsrow(reg, v, 5)
    assert reg.value.get_row(5) == 0xDEAD
    out = b.ireg()
    b.momextrow(out, reg, 5)
    assert out.value == 0xDEAD


def test_mom_broadcast_row():
    b = MomBuilder()
    src, dst = b.mreg(), b.mreg()
    v = b.ireg(0x42)
    b.mominsrow(src, v, 0)
    b.setvli(8)
    b.mombcastrow(dst, src)
    assert all(dst.value.get_row(i) == 0x42 for i in range(8))
    assert dst.value.get_row(8) == 0


def test_mom_matrix_sad_scalar_total():
    b = MomBuilder()
    x = _loaded_matrix(b, np.full(128, 9, dtype=np.uint8))
    y = _loaded_matrix(b, np.full(128, 4, dtype=np.uint8))
    acc = b.areg()
    b.setvli(16)
    b.mommsadb(acc, x, y)
    out = b.ireg()
    b.racl(out, acc, ElemType.Q)
    assert out.value == 5 * 128


def test_mom_matrix_dot_signed():
    b = MomBuilder()
    data = np.asarray([-3] * 8, dtype=np.int16)
    x = b.mreg()
    y = b.mreg()
    addr_x = b.mem.alloc_array(data)
    addr_y = b.mem.alloc_array(np.asarray([2] * 8, dtype=np.int16))
    bx, by, stride = b.ireg(addr_x), b.ireg(addr_y), b.ireg(8)
    b.setvli(2)
    b.momldq(x, bx, stride)
    b.momldq(y, by, stride)
    acc = b.areg()
    b.mommvmh(acc, x, y)
    out = b.ireg()
    b.racl(out, acc, ElemType.Q)
    assert out.value == -3 * 2 * 8


def test_mom_vsum_rows():
    b = MomBuilder()
    x = _loaded_matrix(b, np.ones(128, dtype=np.uint8))
    out = b.mreg()
    b.setvli(16)
    b.momvsumb(out, x)
    assert out.value.get_row(0) == 0x1010101010101010


def test_mom_vector_scalar_forms():
    b = MomBuilder()
    x = _loaded_matrix(b, np.full(128, 10, dtype=np.uint8))
    s = b.mreg()
    five = b.ireg(0x0505050505050505)
    b.mominsrow(s, five, 0)
    out = b.mreg()
    b.setvli(16)
    b.vsaddb(out, x, s)
    assert out.value.get_row(3) == 0x0F0F0F0F0F0F0F0F


def test_mom_transpose_instruction():
    b = MomBuilder()
    lanes = np.arange(64).reshape(16, 4) % 251
    src = b.mreg()
    src.value = MomRegister.from_lane_matrix(lanes, ElemType.H)
    dst = b.mreg()
    b.momtransh(dst, src)
    got = dst.value.to_lane_matrix(ElemType.H)
    assert (got[:4] == lanes[:4].T).all()


def test_mom_register_limits():
    b = MomBuilder()
    for _ in range(16):
        b.mreg()
    with pytest.raises(RuntimeError):
        b.mreg()
    b2 = MomBuilder()
    b2.areg()
    b2.areg()
    with pytest.raises(RuntimeError):
        b2.areg()


def test_mom_compute_records_vl():
    b = MomBuilder()
    x, y, z = b.mreg(), b.mreg(), b.mreg()
    b.setvli(5)
    b.paddb(z, x, y)
    assert b.trace[-1].vl == 5


def test_mom_racl_to_int_vs_matrix():
    b = MomBuilder()
    acc = b.areg()
    acc.value.scalar_add(77)
    out_i = b.ireg()
    b.racl(out_i, acc, ElemType.Q)
    assert out_i.value == 77
    out_m = b.mreg()
    b.racl(out_m, acc, ElemType.Q)
    assert out_m.value.get_row(0) == 77
