"""Tests for the unified experiment engine (specs, cache, sessions, CLI)."""

import json

import pytest

from repro.cpu import SimResult
from repro.emulib.fingerprint import source_fingerprint, trace_digest
from repro.exp import PointSpec, ResultCache, Session, SweepSpec, preset
from repro.exp.engine import built_kernel, execute_point
from repro.exp.spec import PRESETS


KERNEL_POINT = dict(kind="kernel", target="addblock", isa="mom", way=4)


# --- PointSpec ----------------------------------------------------------------

def test_pointspec_is_frozen_and_hashable():
    a = PointSpec(**KERNEL_POINT)
    b = PointSpec(**KERNEL_POINT)
    assert a == b and hash(a) == hash(b)
    assert len({a, b}) == 1
    with pytest.raises(AttributeError):
        a.way = 8


def test_pointspec_content_hash_stability():
    """The cache key is derived from canonical JSON, not ``hash()``, so it
    must be identical across equal instances and payload round-trips."""
    a = PointSpec(**KERNEL_POINT)
    b = PointSpec.from_payload(json.loads(json.dumps(a.payload())))
    assert a.content_hash() == b.content_hash()
    assert a.content_hash("s1") == b.content_hash("s1")
    assert a.content_hash("s1") != a.content_hash("s2")
    changed = PointSpec(**{**KERNEL_POINT, "way": 8})
    assert changed.content_hash() != a.content_hash()


def test_pointspec_validation():
    with pytest.raises(ValueError):
        PointSpec(kind="nope", target="addblock", isa="mom", way=4)
    with pytest.raises(ValueError):
        PointSpec(**{**KERNEL_POINT, "way": 3})
    with pytest.raises(ValueError):
        PointSpec(**{**KERNEL_POINT, "memory": "imaginary"})
    with pytest.raises(ValueError):
        PointSpec(**{**KERNEL_POINT, "latency": 0})


# --- SweepSpec and presets -----------------------------------------------------

def test_sweep_cartesian_product():
    sweep = SweepSpec(name="t", kind="kernel", targets=("addblock", "idct"),
                      isas=("alpha", "mom"), ways=(1, 4), latencies=(1, 50))
    points = sweep.points()
    assert len(points) == 2 * 2 * 2 * 2
    assert len(set(points)) == len(points)
    assert all(p.kind == "kernel" for p in points)


def test_sweep_pairs_override_product():
    sweep = SweepSpec(name="t", kind="app", targets=("jpeg_encode",),
                      ways=(4,), pairs=(("alpha", "conventional"),
                                        ("mom", "vectorcache")))
    points = sweep.points()
    assert [(p.isa, p.memory) for p in points] == [
        ("alpha", "conventional"), ("mom", "vectorcache")]


def test_presets_cover_the_paper():
    assert {"figure5", "figure7", "latency", "fetch-pressure",
            "table1", "frame-scale"} <= set(PRESETS)
    fig5 = preset("figure5")
    assert len(fig5.points()) == 8 * 4 * 4          # kernels x isas x ways
    fig7 = preset("figure7")
    assert len(fig7.points()) == 5 * 2 * 5          # apps x ways x configs
    assert all(p.kind == "app" for p in fig7.points())
    with pytest.raises(KeyError):
        preset("figure99")


def test_frame_scale_preset_runs_one_config_per_figure7_isa():
    frame = preset("frame-scale")
    points = frame.points()
    assert [(p.isa, p.memory) for p in points] == [
        ("alpha", "conventional"), ("mmx", "conventional"),
        ("mom", "vectorcache")]
    assert all(p.kind == "app" and p.target == "mpeg2_frame"
               and p.way == 4 for p in points)
    # The target exists in the registry but stays out of the Figure 7 grid.
    from repro.apps import APP_ORDER, APPS
    assert "mpeg2_frame" in APPS and "mpeg2_frame" not in APP_ORDER


def test_preset_replace_narrows_targets():
    sweep = preset("figure5").replace(targets=("idct",))
    assert len(sweep.points()) == 4 * 4
    assert {p.target for p in sweep.points()} == {"idct"}


# --- SimResult serialization ----------------------------------------------------

def test_simresult_roundtrip():
    result = execute_point(PointSpec(**KERNEL_POINT))
    clone = SimResult.from_dict(json.loads(json.dumps(result.to_dict())))
    assert clone == result
    assert clone.ipc == result.ipc


def test_simresult_from_dict_ignores_unknown_keys():
    """Cache entries written by a newer schema must degrade gracefully."""
    data = SimResult(cycles=10, instructions=5, operations=5).to_dict()
    data["a_future_field"] = {"nested": True}
    clone = SimResult.from_dict(data)
    assert (clone.cycles, clone.instructions) == (10, 5)


def test_simresult_meta_excluded_from_equality():
    """Wall-clock metadata must not break result comparisons or caching."""
    a = SimResult(cycles=10, instructions=5, operations=5,
                  meta={"sim_seconds": 0.25})
    b = SimResult(cycles=10, instructions=5, operations=5)
    assert a == b
    assert SimResult.from_dict(a.to_dict()).meta == {"sim_seconds": 0.25}


def test_execute_point_records_wall_clock_meta():
    result = execute_point(PointSpec(**KERNEL_POINT))
    assert result.meta["sim_seconds"] >= 0
    assert result.meta["sim_instructions_per_second"] > 0


# --- ResultCache ----------------------------------------------------------------

def test_result_cache_put_get_clear(tmp_path):
    cache = ResultCache(tmp_path / "c")
    assert cache.get("k") is None
    cache.put("k", {"result": {"cycles": 1}})
    assert "k" in cache
    assert cache.get("k")["result"] == {"cycles": 1}
    assert len(cache) == 1
    assert cache.clear() == 1
    assert cache.get("k") is None


def test_result_cache_ignores_corrupt_entries(tmp_path):
    cache = ResultCache(tmp_path)
    cache.put("k", {"result": {}})
    (tmp_path / "k.json").write_text("{not json")
    assert cache.get("k") is None
    (tmp_path / "k.json").write_text("[1, 2]")         # valid JSON, not a dict
    assert cache.get("k") is None
    (tmp_path / "k.json").write_bytes(b"\xff\xfe\x00") # not UTF-8
    assert cache.get("k") is None


def test_result_cache_clear_sweeps_tmp_orphans(tmp_path):
    import os
    import time

    cache = ResultCache(tmp_path)
    cache.put("k", {"result": {}})
    orphan = tmp_path / "orphan123.tmp"
    orphan.write_text("partial write")
    # A *young* temp file may belong to a live writer mid-atomic-rename
    # (clear() honours the same TMP_GRACE_SECONDS window as prune()); an
    # aged orphan from a crashed writer is swept.
    assert cache.clear() == 1
    assert orphan.exists()
    past = time.time() - 3600
    os.utime(orphan, (past, past))
    assert cache.clear() == 0
    assert not list(tmp_path.iterdir())


def test_result_cache_crash_mid_write_leaves_no_torn_entry(tmp_path,
                                                           monkeypatch):
    """A writer dying mid-``put`` must never corrupt the published entry.

    The atomic write protocol (temp file + ``os.replace``) means the
    entry file either holds the complete old record or the complete new
    one; the half-written bytes only ever live in a ``*.tmp`` file that
    readers ignore and ``clear`` sweeps.
    """
    cache = ResultCache(tmp_path)
    cache.put("k", {"result": {"cycles": 1}})

    def dies_mid_write(obj, fh, **kwargs):
        fh.write('{"version": 1, "result": {"cyc')       # torn JSON
        fh.flush()
        raise KeyboardInterrupt("writer killed mid-write")

    monkeypatch.setattr(json, "dump", dies_mid_write)
    with pytest.raises(KeyboardInterrupt):
        cache.put("k", {"result": {"cycles": 2}})
    monkeypatch.undo()

    # The old entry is fully intact and is the only entry on disk.
    assert cache.get("k")["result"] == {"cycles": 1}
    assert [p.name for p in cache.entries()] == ["k.json"]

    # Even a hard kill (no chance to unlink the temp file) leaves only a
    # *.tmp orphan, which is never visible as an entry and never parsed.
    (tmp_path / "killed456.tmp").write_text('{"version": 1, "result')
    assert cache.get("killed456") is None
    assert [p.name for p in cache.entries()] == ["k.json"]


# --- Session: hit/miss accounting and invalidation ------------------------------

def test_session_cache_hit_and_miss(tmp_path):
    point = PointSpec(**KERNEL_POINT)
    s1 = Session(tmp_path, salt="s1")
    first = s1.run_point(point)
    assert (s1.hits, s1.misses) == (0, 1)
    second = s1.run_point(point)
    assert (s1.hits, s1.misses) == (1, 1)
    assert first == second

    # A fresh session over the same directory hits the *persistent* layer.
    s2 = Session(tmp_path, salt="s1")
    assert s2.run_point(point) == first
    assert (s2.hits, s2.misses) == (1, 0)


def test_session_salt_change_invalidates(tmp_path):
    point = PointSpec(**KERNEL_POINT)
    Session(tmp_path, salt="s1").run_point(point)
    bumped = Session(tmp_path, salt="s2")
    bumped.run_point(point)
    assert bumped.misses == 1, "a salt change must invalidate old entries"


def test_session_use_cache_false_still_memoizes(tmp_path):
    point = PointSpec(**KERNEL_POINT)
    session = Session(tmp_path, salt="x", use_cache=False)
    session.run_point(point)
    session.run_point(point)
    assert session.cache is None
    assert (session.hits, session.misses) == (1, 1)
    assert not list(tmp_path.glob("*.json"))


def test_cache_replay_marks_meta_cache_hit(tmp_path):
    """Disk replays carry ``meta["cache_hit"]``; fresh runs never do."""
    point = PointSpec(**KERNEL_POINT)
    s1 = Session(tmp_path, salt="s")
    fresh = s1.run_point(point)
    assert "cache_hit" not in fresh.meta
    # A memo replay in the same session is still this process's own
    # measurement; only the *persistent* layer marks the result.
    assert "cache_hit" not in s1.run_point(point).meta

    s2 = Session(tmp_path, salt="s")
    replay = s2.run_point(point)
    assert replay.meta["cache_hit"] is True
    assert replay == fresh        # meta is excluded from equality
    assert replay.meta["sim_seconds"] == fresh.meta["sim_seconds"]

    # Re-storing a replayed result never persists the marker itself.
    s2.store(point, replay)
    entry = s2.cache.get(s2.key_for(point))
    assert "cache_hit" not in entry["result"]["meta"]
    assert Session(tmp_path, salt="s").run_point(point).meta["cache_hit"] \
        is True


def test_default_salt_is_source_fingerprint():
    assert Session(use_cache=False).salt == source_fingerprint()
    assert len(source_fingerprint()) == 16


# --- Session: parallel execution parity ------------------------------------------

SMALL_SWEEP = SweepSpec(name="parity", kind="kernel", targets=("addblock",),
                        isas=("alpha", "mom"), ways=(1, 4))


def test_jobs_parallel_matches_sequential(tmp_path):
    seq = Session(tmp_path / "a", salt="x").run(SMALL_SWEEP, jobs=1)
    par = Session(tmp_path / "b", salt="x").run(SMALL_SWEEP, jobs=2)
    assert list(seq) == list(par)
    for point in seq:
        assert seq[point] == par[point], point


def test_parallel_results_are_cached(tmp_path):
    session = Session(tmp_path, salt="x")
    session.run(SMALL_SWEEP, jobs=2)
    warm = Session(tmp_path, salt="x")
    warm.run(SMALL_SWEEP, jobs=1)
    assert warm.misses == 0
    assert warm.hits == len(SMALL_SWEEP.points())


def test_run_accepts_point_iterables(tmp_path):
    point = PointSpec(**KERNEL_POINT)
    session = Session(tmp_path, salt="x")
    results = session.run([point, point])
    assert list(results) == [point]
    assert results[point].cycles > 0


# --- Session: batch-lane grouping -------------------------------------------------

BATCH_SWEEP = SweepSpec(name="batchy", kind="kernel", targets=("addblock",),
                        isas=("alpha", "mom"), ways=(1, 2, 4))


def test_batched_sweep_matches_unbatched(tmp_path):
    """Same-trace groups dispatched through BatchCore must reproduce the
    point-at-a-time results exactly (equality excludes meta)."""
    plain = Session(tmp_path / "a", salt="x").run(BATCH_SWEEP, batch=False)
    batched = Session(tmp_path / "b", salt="x").run(BATCH_SWEEP, batch=True)
    assert list(plain) == list(batched)
    for point in plain:
        assert plain[point] == batched[point], point


def test_batch_meta_records_lanes_and_group(tmp_path):
    session = Session(tmp_path, salt="x")
    results = session.run(BATCH_SWEEP, batch=True)
    for point, result in results.items():
        # Each (kernel, isa) build is one lane group of all three ways.
        assert result.meta["batch_lanes"] == 3, point
        assert result.meta["batch_group"] == \
            f"kernel-{point.target}-{point.isa}-1"
        assert result.meta["sim_seconds"] > 0


def test_singleton_group_skips_batching(tmp_path):
    session = Session(tmp_path, salt="x")
    result = session.run_point(PointSpec(**KERNEL_POINT))
    assert "batch_lanes" not in result.meta


def test_batch_falls_back_per_point_when_unbatchable(tmp_path, monkeypatch):
    """If a group cannot run through BatchCore the session silently falls
    back to per-point execution rather than failing the sweep."""
    import repro.exp.engine as engine
    from repro.cpu.batch import UnbatchableError

    def refuse(points, **kwargs):
        raise UnbatchableError("forced by test")

    monkeypatch.setattr(engine, "execute_batch", refuse)
    results = Session(tmp_path, salt="x").run(BATCH_SWEEP, batch=True)
    reference = Session(tmp_path / "ref", salt="x").run(
        BATCH_SWEEP, batch=False)
    for point in reference:
        assert results[point] == reference[point]
        assert "batch_lanes" not in results[point].meta


def test_repro_no_batch_env_disables_batching(tmp_path, monkeypatch):
    from repro.exp.engine import batching_enabled

    monkeypatch.setenv("REPRO_NO_BATCH", "1")
    assert not batching_enabled()
    results = Session(tmp_path, salt="x").run(BATCH_SWEEP, batch=True)
    assert all("batch_lanes" not in r.meta for r in results.values())


def test_jobs_parallel_batched_matches_sequential(tmp_path):
    seq = Session(tmp_path / "a", salt="x").run(BATCH_SWEEP, jobs=1,
                                                batch=False)
    par = Session(tmp_path / "b", salt="x").run(BATCH_SWEEP, jobs=2,
                                                batch=True)
    for point in seq:
        assert seq[point] == par[point], point
    for result in par.values():
        assert result.meta["batch_lanes"] == 3


def test_batched_results_are_cached_per_point(tmp_path):
    session = Session(tmp_path, salt="x")
    session.run(BATCH_SWEEP, batch=True)
    warm = Session(tmp_path, salt="x")
    warm.run(BATCH_SWEEP, batch=False)
    assert warm.misses == 0
    assert warm.hits == len(BATCH_SWEEP.points())


# --- build memo and stable build hashing ------------------------------------------

def test_built_kernel_memoized_and_stable():
    a = built_kernel("addblock", "mom", 1)
    b = built_kernel("addblock", "mom", 1)
    assert a is b
    assert trace_digest(a.trace) == trace_digest(b.trace)


def test_trace_digest_distinguishes_isas():
    alpha = built_kernel("addblock", "alpha", 1)
    mom = built_kernel("addblock", "mom", 1)
    assert trace_digest(alpha.trace) != trace_digest(mom.trace)


# --- CLI -------------------------------------------------------------------------

def test_cli_sweep_runs_and_reports_cache(tmp_path, capsys):
    from repro.exp.cli import main

    argv = ["sweep", "--kernels", "addblock", "--isas", "alpha,mom",
            "--ways", "1,4", "--cache-dir", str(tmp_path)]
    assert main(argv) == 0
    cold = capsys.readouterr().out
    assert "addblock" in cold and "4 points" in cold
    assert "4 misses" in cold

    assert main(argv) == 0
    warm = capsys.readouterr().out
    assert "4 hits, 0 misses" in warm

    def cells(text):
        return [line.split() for line in text.splitlines()
                if line.startswith("addblock")]
    assert cells(cold) == cells(warm)


def test_cli_rejects_unknown_inputs(tmp_path, capsys):
    from repro.exp.cli import main

    base = ["--cache-dir", str(tmp_path)]
    assert main(["sweep", "nosuchpreset"] + base) == 2
    assert "unknown preset" in capsys.readouterr().err
    assert main(["sweep", "--kernels", "nosuchkernel"] + base) == 2
    assert "unknown kernel" in capsys.readouterr().err
    assert main(["sweep", "--kernels", "addblock", "--ways", "3"] + base) == 2
    assert "way 3" in capsys.readouterr().err


def test_cli_memory_override_of_pair_preset_is_not_empty(tmp_path):
    """`repro sweep figure7 --memory X` must fall back to the ISA axis
    rather than resolving to a silent 0-point sweep."""
    from repro.exp.cli import _sweep_from_args, build_parser

    args = build_parser().parse_args(
        ["sweep", "figure7", "--memory", "conventional",
         "--apps", "jpeg_encode", "--cache-dir", str(tmp_path)])
    sweep = _sweep_from_args(args)
    points = sweep.points()
    assert points, "override must not produce an empty sweep"
    assert {p.isa for p in points} == {"alpha", "mmx", "mom"}
    assert {p.memory for p in points} == {"conventional"}


def test_presets_is_a_plain_dict():
    assert isinstance(PRESETS, dict)
    assert PRESETS.get("figure5") is not None        # .get must see entries
    assert len(PRESETS.values()) == len(PRESETS)


def test_cli_cache_inspect_and_clear(tmp_path, capsys):
    from repro.exp.cli import main

    main(["sweep", "--kernels", "addblock", "--isas", "alpha",
          "--ways", "1", "--cache-dir", str(tmp_path)])
    capsys.readouterr()
    assert main(["cache", "--cache-dir", str(tmp_path)]) == 0
    out = capsys.readouterr().out
    assert "entries:         1" in out
    assert main(["cache", "--cache-dir", str(tmp_path), "--clear"]) == 0
    assert "cleared 1" in capsys.readouterr().out
    assert not list(tmp_path.glob("*.json"))


def test_cli_tables(capsys):
    from repro.exp.cli import main

    assert main(["tables"]) == 0
    out = capsys.readouterr().out
    assert "Table 1" in out and "Table 2" in out and "Table 3" in out
