"""Disassembler round-trip over the compiler's full opcode surface.

Every opcode any lowering pass can emit is rendered with
``format_instr`` and parsed back with ``parse_instr``; the parsed fields
must agree with the originating ``DynInstr``.  A lowering bug that emits
a malformed operand combination therefore surfaces as a *readable*
disassembly diff instead of a digest mismatch deep in the parity grid.
"""

import pytest

from repro.emulib.disasm import (disassemble, format_instr, format_operand,
                                 parse_instr)
from repro.kernels import ISAS, KERNELS
from repro.vc import COMPILED, compile_kernel

#: Opcodes each lowering pass must be able to emit (the documented
#: compiler surface; the traces below must cover every one).
EXPECTED_SURFACE = {
    "alpha": {"lda", "bis", "ldbu", "ldwu", "stb", "sextw", "addq", "subq",
              "mulq", "srl", "cmplt", "cmovne", "cmovlt", "bne"},
    "mmx": {"mmx_ldq", "mmx_stq", "pxor", "punpcklb", "punpckhb", "paddh",
            "psubh", "pmullh", "psrlh", "packushb", "pabsdiffb", "psubusb",
            "pcmpeqb", "pcmov", "psadb", "pmaddh", "paddw", "psrlq",
            "movd_from"},
    "mdmx": {"mdmx_ldq", "mdmx_stq", "pxor", "punpcklb", "punpckhb",
             "paddh", "pmullh", "psrlh", "packushb", "pabsdiffb",
             "psubusb", "pcmpeqb", "pcmov", "paccsadb", "paccsqdb",
             "clracc", "racl", "racm", "rach", "pextrh"},
    "mom": {"momldq", "momstq", "momldbcast", "momzero", "setvli",
            "punpcklb", "punpckhb", "paddh", "pmullh", "psrlh",
            "packushb", "pabsdiffb", "psubusb", "pcmpeqb", "pcmov",
            "mommsadb", "mommsqdb", "clracc", "racl"},
}


def _compiled_traces(isa):
    for name, record in sorted(COMPILED.items()):
        spec = KERNELS[name]
        workload = spec.make_workload(1)
        built = compile_kernel(record.ir, isa, record.bind(workload),
                               record.output_key)
        yield name, built.trace


def _roundtrip(instr) -> None:
    line = format_instr(instr)
    parsed = parse_instr(line)
    assert parsed.name == instr.op.name
    expected_ops = tuple(format_operand(d) for d in instr.dsts)
    expected_ops += tuple(format_operand(s) for s in instr.srcs)
    assert parsed.operands == expected_ops, line
    if instr.addr is not None:
        assert parsed.addr == instr.addr, line
        if instr.vl > 1:
            assert parsed.stride == instr.stride, line
            assert parsed.vl == instr.vl, line
        else:
            assert parsed.nbytes == instr.nbytes, line
    elif instr.vl > 1:
        assert parsed.vl == instr.vl, line
    if instr.taken is not None:
        assert parsed.taken == instr.taken, line
        assert parsed.site == instr.site, line


@pytest.mark.parametrize("isa", ISAS)
def test_every_compiler_opcode_roundtrips(isa):
    """One round-trip per distinct (opcode, operand-shape) occurrence."""
    seen: set = set()
    emitted: set[str] = set()
    for name, trace in _compiled_traces(isa):
        for instr in trace:
            emitted.add(instr.op.name)
            shape = (instr.op.name, len(instr.srcs), len(instr.dsts),
                     instr.addr is not None, instr.vl > 1,
                     instr.taken is not None)
            if shape in seen:
                continue
            seen.add(shape)
            _roundtrip(instr)
    missing = EXPECTED_SURFACE[isa] - emitted
    assert not missing, (f"{isa}: compiler surface opcodes never emitted "
                         f"by any compiled kernel: {sorted(missing)}")


@pytest.mark.parametrize("isa", ISAS)
def test_disassemble_listing_parses_line_by_line(isa):
    record = COMPILED["ssd"]
    spec = KERNELS["ssd"]
    workload = spec.make_workload(1)
    built = compile_kernel(record.ir, isa, record.bind(workload),
                           record.output_key)
    listing = disassemble(built.trace, 0, 64)
    lines = listing.splitlines()
    assert lines[0].startswith("; trace:")
    for i, line in enumerate(lines[1:]):
        index, _, body = line.partition(":")
        assert int(index) == i
        parsed = parse_instr(body)
        assert parsed.name == built.trace[i].op.name


def test_parse_rejects_garbage():
    for bad in ("", "; taken", "op r1, q9", "paddh m1  ; wat=7"):
        with pytest.raises(ValueError):
            parse_instr(bad)


#: Hand-kernel opcodes outside the compiler surface that the stream
#: verifier reasons about (RMW row inserts, accumulator readout
#: variants, scalar reduction plumbing); their listings must round-trip
#: too so verifier findings stay quotable.
EXPECTED_HAND_EXTRAS = {"mominsrow", "momextrow", "raccsh", "raccuh",
                        "pmaddah", "movd_from", "pmaddh", "psadb"}


def test_every_hand_kernel_opcode_roundtrips():
    """The verifier runs over hand streams as well: every opcode any
    registered builder emits must survive format -> parse."""
    seen: set = set()
    emitted: set[str] = set()
    for name, spec in sorted(KERNELS.items()):
        workload = spec.make_workload(1)
        for isa in ISAS:
            built = spec.builders[isa](workload)
            for instr in built.trace:
                emitted.add(instr.op.name)
                shape = (instr.op.name, len(instr.srcs), len(instr.dsts),
                         instr.addr is not None, instr.vl > 1,
                         instr.taken is not None)
                if shape in seen:
                    continue
                seen.add(shape)
                _roundtrip(instr)
    missing = EXPECTED_HAND_EXTRAS - emitted
    assert not missing, (f"verifier-relevant hand opcodes never emitted: "
                         f"{sorted(missing)}")
