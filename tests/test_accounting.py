"""Cycle accounting: conservation, engine parity, tolerant round-trips.

The CPI stack obeys one hard invariant -- every simulated cycle lands in
exactly one component (``cycles == sum(stack)``) -- and one parity
contract: the interpreted core, the busy-wait reference oracle, the
batch-lane stepper and the jit kernel (pure-python shim where numba is
absent) attribute every cycle to the *same* bucket, bit for bit, across
the whole golden mini-grid.  A frozen pre-1.7 result dict pins the
tolerant loading path, and a hypothesis fuzzer hammers conservation on
random knob/width/latency configurations.
"""

import itertools

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.cpu import Core, machine_config
from repro.cpu.batch import BatchCore, LaneSpec
from repro.cpu.core import STACK_COMPONENTS, SimResult, TimingStats, \
    checked_stack
from repro.exp.engine import built_kernel
from repro.exp.spec import PointSpec

from test_golden_digest import (GOLDEN_DIGESTS, grid_points, make_memsys,
                                result_digest)


def _accounted(kernel, isa, way, label, *, jit=False, reference=False):
    core = Core(machine_config(way, isa), make_memsys(label, way, isa),
                accounting=True)
    trace = built_kernel(kernel, isa).trace
    if reference:
        return core.run_reference(trace)
    return core.run(trace, jit=jit)


# --- conservation and digest neutrality --------------------------------------

@pytest.mark.parametrize("kernel,isa,way,memory", list(grid_points()),
                         ids=lambda v: str(v))
def test_conservation_and_digest_neutrality(kernel, isa, way, memory):
    """Accounting attributes every cycle exactly once -- and changes no
    timing field: stripping ``cpi_stack`` recovers the seed digest."""
    result = _accounted(kernel, isa, way, memory)
    assert result.stack is not None
    assert result.stack.total() == result.cycles
    assert all(getattr(result.stack, c) >= 0 for c in STACK_COMPONENTS)
    data = result.to_dict()
    data.pop("cpi_stack")
    bare = SimResult.from_dict(data)
    bare.stack = None
    assert result_digest(bare) == GOLDEN_DIGESTS[(kernel, isa, way, memory)]


def test_accounting_off_produces_no_stack():
    result = Core(machine_config(2, "mmx"),
                  make_memsys("perfect", 2, "mmx")).run(
                      built_kernel("idct", "mmx").trace)
    assert result.stack is None
    assert "cpi_stack" not in result.to_dict()


# --- engine parity across the golden mini-grid -------------------------------

def _grouped_grid():
    return [(key, list(points)) for key, points in itertools.groupby(
        sorted(grid_points()), key=lambda p: (p[0], p[1]))]


@pytest.mark.parametrize("group,points", _grouped_grid(),
                         ids=lambda v: "-".join(v) if isinstance(v, tuple)
                         and isinstance(v[0], str) else None)
def test_batch_stack_parity(group, points, monkeypatch):
    """The batch-lane stepper's stacks are bit-identical to ``Core.run``."""
    monkeypatch.setenv("REPRO_NO_JIT", "1")
    kernel, isa = group
    trace = built_kernel(kernel, isa).trace
    lanes = [LaneSpec(machine_config(way, isa), make_memsys(mem, way, isa),
                      accounting=True)
             for _, _, way, mem in points]
    results = BatchCore(lanes).run(trace)
    for (k, i, way, mem), batched in zip(points, results):
        interp = _accounted(k, i, way, mem)
        assert batched.stack == interp.stack, (k, i, way, mem)
        assert batched.stack.total() == batched.cycles


@pytest.mark.parametrize("group,points", _grouped_grid(),
                         ids=lambda v: "-".join(v) if isinstance(v, tuple)
                         and isinstance(v[0], str) else None)
def test_jit_stack_parity(group, points, monkeypatch):
    """The jit kernel (pure-python shim, so it runs on every host)
    attributes cycles identically; unjittable cache lanes fall back."""
    monkeypatch.setenv("REPRO_JIT_PUREPY", "1")
    monkeypatch.delenv("REPRO_NO_JIT", raising=False)
    kernel, isa = group
    trace = built_kernel(kernel, isa).trace
    lanes = [LaneSpec(machine_config(way, isa), make_memsys(mem, way, isa),
                      accounting=True)
             for _, _, way, mem in points]
    results = BatchCore(lanes).run(trace)
    for (k, i, way, mem), jitted in zip(points, results):
        interp = _accounted(k, i, way, mem)
        assert jitted.stack == interp.stack, (k, i, way, mem)


def test_reference_oracle_stack_parity():
    """The retained busy-wait oracle agrees bucket for bucket (spot check:
    one point per memory-model family)."""
    for point in (("idct", "mom", 8, "cache"),
                  ("idct", "mom", 2, "vectorcache"),
                  ("motion2", "mom", 8, "collapsing"),
                  ("motion2", "alpha", 2, "perfect"),
                  ("motion2", "mmx", 8, "latency50")):
        kernel, isa, way, memory = point
        event = _accounted(kernel, isa, way, memory)
        oracle = _accounted(kernel, isa, way, memory, reference=True)
        assert event.stack == oracle.stack, point


def test_mirrored_lanes_carry_the_stack():
    """Collapsed duplicate lanes mirror the representative's stack."""
    cfg = machine_config(8, "mom")
    trace = built_kernel("idct", "mom").trace

    def lane():
        return LaneSpec(cfg, make_memsys("perfect", 8, "mom"),
                        accounting=True)

    results = BatchCore([lane(), lane()]).run(trace)
    assert results[1].meta.get("batch_mirrored") is True
    assert results[0].stack == results[1].stack
    assert results[1].stack.total() == results[1].cycles


# --- tolerant round-trips ----------------------------------------------------

#: A result dict exactly as package 1.6 wrote it (no ``cpi_stack``),
#: captured from ``compensation/mmx/2-way/perfect`` before accounting
#: existed.  Loading it must keep working forever.
FROZEN_V16_RESULT = {
    "branch_lookups": 16,
    "branch_mispredicts": 4,
    "btb_misses": 1,
    "cycles": 418,
    "fetch_stall_cycles": 25,
    "instructions": 752,
    "mem_stats": {
        "element_accesses": 384,
        "scalar_accesses": 384,
        "vector_accesses": 0,
    },
    "meta": {},
    "operations": 1648,
    "rename_stall_events": 0,
}


def test_frozen_v16_result_loads_without_stack():
    result = SimResult.from_dict(dict(FROZEN_V16_RESULT))
    assert result.stack is None
    assert result.cycles == 418 and result.instructions == 752
    assert result.to_dict() == FROZEN_V16_RESULT      # round-trip, no growth


def test_partial_stack_loads_default_zero_and_flagged():
    stack = TimingStats.from_dict({"base": 400, "fetch": 18})
    assert stack.legacy
    assert stack.base == 400 and stack.fetch == 18
    assert stack.mem_latency == 0 and stack.total() == 418
    full = TimingStats.from_dict(TimingStats(base=1, drain=2).to_dict())
    assert not full.legacy
    # legacy is excluded from equality so old results stay comparable.
    assert stack == TimingStats(base=400, fetch=18)


def test_accounted_result_roundtrips_through_dict():
    result = _accounted("idct", "mom", 2, "vectorcache")
    clone = SimResult.from_dict(result.to_dict())
    assert clone.stack == result.stack and not clone.stack.legacy
    assert clone == result


def test_checked_stack_raises_on_leak():
    with pytest.raises(AssertionError, match="conservation"):
        checked_stack(10, TimingStats(base=9))
    assert checked_stack(9, TimingStats(base=9)).base == 9


def test_point_payload_omits_accounting_when_off():
    plain = PointSpec(kind="kernel", target="idct", isa="mom", way=2)
    assert "accounting" not in plain.payload()
    on = PointSpec(kind="kernel", target="idct", isa="mom", way=2,
                   accounting=True)
    assert on.payload()["accounting"] is True
    assert on.content_hash() != plain.content_hash()


# --- conservation fuzzer -----------------------------------------------------

@settings(max_examples=30, deadline=None,
          suppress_health_check=[HealthCheck.data_too_large])
@given(
    kernel=st.sampled_from(("compensation", "idct")),
    isa=st.sampled_from(("alpha", "mmx", "mdmx", "mom")),
    way=st.sampled_from((1, 2, 4, 8)),
    latency=st.integers(min_value=1, max_value=60),
    cache=st.booleans(),
    acc_chaining=st.booleans(),
    late_release=st.booleans(),
    zero_idiom_elision=st.booleans(),
)
def test_conservation_fuzz(kernel, isa, way, latency, cache,
                           acc_chaining, late_release, zero_idiom_elision):
    """Random machine/knob/latency points never leak or double-count a
    cycle, and the event core agrees with the reference oracle."""
    if cache:
        memsys = make_memsys("cache", way, isa)
    else:
        cfg = machine_config(way, isa)
        from repro.memsys import PerfectMemory
        memsys = PerfectMemory(latency, cfg.mem_ports, cfg.mem_port_width)
    core = Core(machine_config(way, isa), memsys, accounting=True,
                acc_chaining=acc_chaining, late_release=late_release,
                zero_idiom_elision=zero_idiom_elision)
    result = core.run(built_kernel(kernel, isa).trace)
    assert result.stack.total() == result.cycles
    assert all(getattr(result.stack, c) >= 0 for c in STACK_COMPONENTS)
