"""Tests for the evaluation harness, tables and the vectorization model."""

import pytest

from repro.core.vectorize import (LoopNest, compare, conventional_vector,
                                  dist1_nest, mmx_like, mom_matrix)
from repro.eval.figure5 import mom_vs_best_simd
from repro.eval.figure7 import CONFIGS
from repro.eval.latency import HIGH_LATENCY, summarize
from repro.eval.runner import (built_kernel, format_grid, kernel_speedup_grid,
                               simulate_kernel)
from repro.eval.tables import table1_rows, table2_rows, table3_rows


# --- runner -------------------------------------------------------------------

def test_built_kernel_memoized():
    a = built_kernel("compensation", "mom", 1)
    b = built_kernel("compensation", "mom", 1)
    assert a is b


def test_simulate_kernel_returns_result():
    result = simulate_kernel("compensation", "mom", 4)
    assert result.cycles > 0
    assert result.instructions == len(built_kernel("compensation", "mom", 1).trace)


def test_speedup_grid_structure():
    points = kernel_speedup_grid("compensation", isas=("alpha", "mom"),
                                 ways=(1, 4))
    assert len(points) == 4
    baseline = [p for p in points if p.isa == "alpha" and p.way == 1][0]
    assert baseline.speedup == pytest.approx(1.0)
    mom4 = [p for p in points if p.isa == "mom" and p.way == 4][0]
    assert mom4.speedup > 1.0


def test_format_grid_renders():
    points = kernel_speedup_grid("compensation", isas=("alpha", "mom"),
                                 ways=(1,))
    text = format_grid(points)
    assert "alpha" in text and "mom" in text and "1-way" in text


def test_mom_beats_simd_on_motion(capsys):
    from repro.eval import figure5
    results = figure5.run(kernels=("motion2",), quiet=True)
    ratios = mom_vs_best_simd(results)
    assert ratios["motion2"] > 1.3


def test_latency_summary_shape():
    fake = {"k1": {"alpha": 5.0, "mmx": 4.0, "mdmx": 4.5, "mom": 2.0},
            "k2": {"alpha": 9.0, "mmx": 8.0, "mdmx": 7.0, "mom": 4.0}}
    ranges = summarize(fake)
    assert ranges["alpha"] == (5.0, 9.0)
    assert ranges["mom"] == (2.0, 4.0)
    assert HIGH_LATENCY == 50


def test_latency_tolerance_ordering():
    """MOM must tolerate the 50-cycle memory better than scalar Alpha."""
    from repro.eval.latency import run
    results = run(way=4, kernels=("compensation",), quiet=True)
    row = results["compensation"]
    assert row["mom"] < row["alpha"]
    assert row["mom"] < row["mmx"]


# --- figure 7 config ---------------------------------------------------------------

def test_figure7_configurations_match_paper():
    labels = [c[0] for c in CONFIGS]
    assert labels == ["alpha-conv", "mmx-conv", "mom-multiaddress",
                      "mom-vectorcache", "mom-collapsing"]
    isas = {c[1] for c in CONFIGS}
    assert isas == {"alpha", "mmx", "mom"}     # no MDMX at app level


# --- tables --------------------------------------------------------------------------

def test_table1_contents():
    rows = table1_rows()
    assert [r["way"] for r in rows] == [1, 2, 4, 8]
    assert rows[0]["rob"] == 8 and rows[3]["rob"] == 64
    assert rows[3]["med"] == "4 - (2x2)"
    assert rows[3]["ports"] == "4 - (2x2)"


def test_table2_contents():
    rows = table2_rows()
    assert rows["mmx"]["media_regs"] == "32/64"
    assert rows["mom"]["media_regs"] == "16/20"
    assert rows["mom"]["norm_area"] == pytest.approx(0.87, abs=0.01)
    assert rows["mdmx"]["size_kb"] == pytest.approx(0.78, abs=0.01)


def test_table3_contents():
    rows = table3_rows()
    assert rows[4]["conv_ma"]["l1_ports"] == 2
    assert rows[8]["conv_ma"]["l1_banks"] == 8
    assert rows[4]["vc_col"]["l2_ports"] == "1x2"
    assert rows[8]["vc_col"]["l2_ports"] == "1x4"


# --- vectorization model (Figure 3) -----------------------------------------------------

def test_loopnest_validation():
    with pytest.raises(ValueError):
        LoopNest(inner_trip=0, outer_trip=1)
    with pytest.raises(ValueError):
        LoopNest(inner_trip=1, outer_trip=1, elem_bits=7)


def test_vector_wastes_register_bits():
    cov = conventional_vector(dist1_nest())
    assert cov.utilization == pytest.approx(8 / 64)
    assert cov.elements_per_instruction == 16


def test_mmx_full_utilization_single_row():
    cov = mmx_like(dist1_nest())
    assert cov.utilization == 1.0
    assert cov.elements_per_instruction == 8


def test_wider_register_capped_by_stride():
    narrow = mmx_like(dist1_nest(), register_bits=128)
    wide = mmx_like(dist1_nest(), register_bits=1024)
    assert narrow.elements_per_instruction == wide.elements_per_instruction == 16


def test_wider_register_helps_contiguous_data():
    nest = LoopNest(inner_trip=16, outer_trip=16, stride_bytes=16)
    wide = mmx_like(nest, register_bits=1024)
    assert wide.elements_per_instruction == 128


def test_mom_covers_half_the_block():
    cov = mom_matrix(dist1_nest())
    assert cov.elements_per_instruction == 128    # 16 rows x 8 pixels
    assert cov.utilization == 1.0
    assert cov.instructions_for(dist1_nest()) == 2


def test_compare_returns_all_paradigms():
    result = compare(dist1_nest())
    assert set(result) == {"vector", "mmx", "mom"}
    assert (result["mom"].elements_per_instruction
            > result["mmx"].elements_per_instruction)
