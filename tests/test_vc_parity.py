"""Compiler parity: compiled mirrors reproduce the hand builders.

Three hand-written kernels -- ``addblock`` (saturating map), ``motion1``
(SAD reduction) and ``motion2`` (SQD reduction) -- are re-expressed as
IR in :mod:`repro.vc.mirrors` and compiled by every lowering pass.  Two
levels of pinning:

* **Stream equivalence**: the compiled trace must match the hand trace
  instruction for instruction -- same opcode, effective address, element
  size, stride, vector length, branch outcome and site -- with register
  operands equal up to one global bijection (a renaming of architectural
  registers, which the renamed out-of-order core is exactly invariant
  under).  Most passes emit byte-identical traces; the packed ``addblock``
  passes allocate their zero register at a different index.
* **SimResult digests**: over the golden mini-grid (2/8-way x perfect and
  realistic-cache memory), the simulated results of hand and compiled
  traces must be digest-for-digest identical -- the acceptance bar for
  every future lowering change, enforced in CI by the compile-parity job.
"""

import pytest

from repro.cpu import Core, machine_config
from repro.emulib.fingerprint import trace_digest
from repro.kernels import KERNELS
from repro.vc import COMPILED, compile_kernel

# One digest scheme and one cache-model mapping across the golden and
# parity suites: drifting apart would silently pin different things.
# (tests/ has no __init__.py; pytest's prepend import mode puts the
# directory itself on sys.path, so the sibling imports flat.)
from test_golden_digest import make_memsys, result_digest

MIRRORED = ("addblock", "motion1", "motion2")
ISAS = ("alpha", "mmx", "mdmx", "mom")
WAYS = (2, 8)
MEMORIES = ("perfect", "cache")

#: Passes whose emission is register-for-register identical to the hand
#: builders (the rest differ only by the register bijection).
EXACT = {
    ("addblock", "alpha"),
    ("motion1", "alpha"), ("motion1", "mmx"), ("motion1", "mdmx"),
    ("motion1", "mom"),
    ("motion2", "alpha"), ("motion2", "mmx"), ("motion2", "mdmx"),
    ("motion2", "mom"),
}


def _builds(kernel, isa):
    spec = KERNELS[kernel]
    workload = spec.make_workload(1)
    hand = spec.build(isa, workload)
    record = COMPILED[kernel]
    compiled = compile_kernel(record.ir, isa, record.bind(workload),
                              record.output_key)
    return spec, workload, hand, compiled


def _structural(ins):
    return (ins.op.isa, ins.op.name, ins.addr, ins.nbytes, ins.stride,
            ins.vl, ins.taken, ins.site, len(ins.srcs), len(ins.dsts))


@pytest.mark.parametrize("kernel", MIRRORED)
@pytest.mark.parametrize("isa", ISAS)
def test_stream_equivalence(kernel, isa):
    """Opcode-exact streams, register-renaming a global bijection."""
    _, _, hand, compiled = _builds(kernel, isa)
    ht, ct = hand.trace, compiled.trace
    assert len(ht) == len(ct), (
        f"{kernel}/{isa}: {len(ht)} hand vs {len(ct)} compiled instructions")
    fwd: dict[int, int] = {}
    bwd: dict[int, int] = {}
    for i, (h, c) in enumerate(zip(ht, ct)):
        assert _structural(h) == _structural(c), (
            f"{kernel}/{isa}: instruction {i} diverges: {h!r} vs {c!r}")
        for hr, cr in zip(h.srcs + h.dsts, c.srcs + c.dsts):
            assert fwd.setdefault(hr, cr) == cr, (
                f"{kernel}/{isa}: register renaming not a function at {i}")
            assert bwd.setdefault(cr, hr) == hr, (
                f"{kernel}/{isa}: register renaming not injective at {i}")


@pytest.mark.parametrize("kernel,isa",
                         sorted(EXACT), ids=lambda v: str(v))
def test_exact_trace_digest(kernel, isa):
    """Most passes reproduce the hand trace digest byte for byte."""
    _, _, hand, compiled = _builds(kernel, isa)
    assert trace_digest(hand.trace) == trace_digest(compiled.trace)


@pytest.mark.parametrize("kernel", MIRRORED)
@pytest.mark.parametrize("isa", ISAS)
def test_compiled_outputs_match_golden(kernel, isa):
    """Compiled builders pass the same golden check as the hand ones."""
    spec, workload, _, compiled = _builds(kernel, isa)
    import numpy as np
    for key, want in spec.golden(workload).items():
        assert key in compiled.outputs
        assert np.array_equal(np.asarray(compiled.outputs[key]),
                              np.asarray(want))


@pytest.mark.parametrize("kernel", MIRRORED)
@pytest.mark.parametrize("isa", ISAS)
def test_simresult_digest_parity_mini_grid(kernel, isa):
    """Bit-identical SimResult digests on the golden mini-grid."""
    _, _, hand, compiled = _builds(kernel, isa)
    for way in WAYS:
        for memory in MEMORIES:
            hand_result = Core(machine_config(way, isa),
                               make_memsys(memory, way, isa)).run(hand.trace)
            comp_result = Core(machine_config(way, isa),
                               make_memsys(memory, way, isa)).run(
                                   compiled.trace)
            assert result_digest(hand_result) == result_digest(comp_result), (
                f"{kernel}/{isa} way={way} {memory}: SimResult diverged")


def test_mirrors_marked_in_registry():
    for kernel in MIRRORED:
        assert COMPILED[kernel].mirror, f"{kernel} should be a mirror"
    for kernel in ("blend", "chromakey", "ssd"):
        assert not COMPILED[kernel].mirror
