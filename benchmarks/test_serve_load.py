"""Serve load benchmark: multi-client aggregate throughput vs one Session.

Replays a figure5+figure7-sized grid through a load pattern modeled on
how a shared service is actually hit -- many clients asking for the
same popular grids -- and emits ``benchmarks/BENCH_serve.json``:

1. **baseline** -- a single sequential in-process :class:`Session` runs
   the grid once on a cold cache: the pre-service cost of answering one
   client.
2. **cold storm** -- ``CLIENTS`` concurrent clients each submit the
   full grid to a freshly booted server (``WORKERS`` shards, cold
   cache).  In-flight dedup collapses the storm to one simulation per
   unique point; client-observed p50/p95 per-point latencies are taken
   here.
3. **replay** -- the same clients immediately re-submit the grid; the
   warm cache answers without touching a worker.

The headline numbers: ``aggregate.speedup_vs_baseline`` -- total points
answered across all clients and passes divided by total service wall,
over the baseline's points/sec -- must be >= 2x, and the replay pass
must show a >= 90% dedup-or-cache hit rate.  Both are sanity-asserted
on the full grid; the claim's provenance (grid size, workers, clients,
CPUs) is recorded in the JSON.

The server pool is forked *before* the baseline runs so its workers
inherit no memoized builds -- both sides pay full build costs.

Set ``REPRO_BENCH_SMOKE=1`` (CI) to shrink the grid; the JSON then
carries ``"smoke": true`` so trajectories are not cross-compared.
"""

import asyncio
import json
import os
import shutil
import threading
import time
from pathlib import Path

from repro.exp import Session, preset
from repro.serve import Client, SimServer, run_server

SMOKE = os.environ.get("REPRO_BENCH_SMOKE") == "1"
WORKERS = 2 if SMOKE else 4
CLIENTS = 2
OUTPUT = Path(__file__).parent / "BENCH_serve.json"


def load_grid():
    """The benchmark grid: figure5 + figure7 (shrunk under SMOKE)."""
    fig5, fig7 = preset("figure5"), preset("figure7")
    if SMOKE:
        fig5 = fig5.replace(targets=("idct", "motion2"), ways=(2, 4))
        fig7 = fig7.replace(targets=("jpeg_encode",), ways=(4,))
    return fig5.points() + fig7.points()


def percentile(values, fraction):
    ordered = sorted(values)
    return ordered[min(len(ordered) - 1, int(fraction * len(ordered)))]


def boot_server(cache_dir):
    """A live server on an ephemeral port; returns (server, thread)."""
    server = SimServer("127.0.0.1", 0, workers=WORKERS, cache_dir=cache_dir)
    started = threading.Event()

    def runner():
        asyncio.run(run_server(server, started))

    thread = threading.Thread(target=runner, daemon=True)
    thread.start()
    assert started.wait(60), "server failed to start"
    return server, thread


def timed_submit(port, points):
    """Submit a grid; returns (seconds, per-point latencies, done message)."""
    latencies = []
    done = {}
    start = time.perf_counter()
    with Client("127.0.0.1", port, timeout=1800) as client:
        for message in client.submit_iter(points):
            if message["op"] == "result":
                assert message["ok"], message
                latencies.append(time.perf_counter() - start)
            elif message["op"] == "done":
                done = message
    return time.perf_counter() - start, latencies, done


def storm(port, points, clients):
    """``clients`` concurrent full-grid submits; returns per-client data."""
    outcomes = {}
    errors = []

    def one_client(name):
        try:
            outcomes[name] = timed_submit(port, points)
        except BaseException as exc:
            errors.append(exc)

    start = time.perf_counter()
    threads = [threading.Thread(target=one_client, args=(f"c{i}",))
               for i in range(clients)]
    for t in threads:
        t.start()
    for t in threads:
        t.join(1800)
    wall = time.perf_counter() - start
    assert not errors, errors
    assert len(outcomes) == clients
    return wall, outcomes


def test_serve_load(tmp_path):
    points = load_grid()
    n = len(points)

    # Fork the shard pool before any build is memoized in this process,
    # so the served phases cannot inherit work the baseline already did.
    server, thread = boot_server(tmp_path / "serve-cache")

    base_start = time.perf_counter()
    baseline_session = Session(tmp_path / "baseline-cache", jobs=1)
    baseline_results = baseline_session.run(points)
    baseline_s = time.perf_counter() - base_start
    assert baseline_session.misses == n       # genuinely cold
    baseline_pps = n / baseline_s

    cold_s, cold = storm(server.port, points, CLIENTS)
    cold_dones = [done for (_, _, done) in cold.values()]
    assert sum(d["simulated"] for d in cold_dones) == n, \
        "dedup must collapse the storm to one simulation per unique point"
    latencies = [lat for (_, lats, _) in cold.values() for lat in lats]

    replay_s, replay = storm(server.port, points, CLIENTS)
    replay_dones = [done for (_, _, done) in replay.values()]
    answered = sum(d["cache_hits"] + d["dedup_hits"] for d in replay_dones)
    hit_rate = answered / (CLIENTS * n)

    with Client("127.0.0.1", server.port, timeout=60) as client:
        stats = client.stats()
        assert stats["workers_alive"] == WORKERS, "a shard worker died"
        served = client.run(points[:1])       # spot-check result identity
        client.shutdown()
    thread.join(60)
    assert served[points[0]] == baseline_results[points[0]]

    total_answered = 2 * CLIENTS * n          # both passes, every client
    aggregate_pps = total_answered / (cold_s + replay_s)
    speedup = aggregate_pps / baseline_pps
    report = {
        "benchmark": "serve_load",
        "smoke": SMOKE,
        "grid_points": n,
        "workers": WORKERS,
        "clients": CLIENTS,
        "cpus": (len(os.sched_getaffinity(0))
                 if hasattr(os, "sched_getaffinity") else os.cpu_count()),
        "baseline": {
            "seconds": round(baseline_s, 2),
            "points_per_sec": round(baseline_pps, 2),
        },
        "cold_storm": {
            "seconds": round(cold_s, 2),
            "points_per_sec": round(CLIENTS * n / cold_s, 2),
            "p50_latency_s": round(percentile(latencies, 0.50), 3),
            "p95_latency_s": round(percentile(latencies, 0.95), 3),
            "simulated": sum(d["simulated"] for d in cold_dones),
            "dedup_hits": sum(d["dedup_hits"] for d in cold_dones),
            "cache_hits": sum(d["cache_hits"] for d in cold_dones),
            "dedup_ratio": round(
                sum(d["dedup_hits"] for d in cold_dones) / (CLIENTS * n), 4),
        },
        "replay": {
            "seconds": round(replay_s, 2),
            "points_per_sec": round(CLIENTS * n / replay_s, 2),
            "cache_hits": sum(d["cache_hits"] for d in replay_dones),
            "dedup_hits": sum(d["dedup_hits"] for d in replay_dones),
            "simulated": sum(d["simulated"] for d in replay_dones),
            "dedup_or_cache_hit_rate": round(hit_rate, 4),
        },
        "aggregate": {
            "points_answered": total_answered,
            "seconds": round(cold_s + replay_s, 2),
            "points_per_sec": round(aggregate_pps, 2),
            "speedup_vs_baseline": round(speedup, 2),
        },
    }
    OUTPUT.write_text(json.dumps(report, indent=2) + "\n")
    shutil.rmtree(tmp_path, ignore_errors=True)
    print(f"\nserve load: {n} points x {CLIENTS} clients x 2 passes, "
          f"{WORKERS} workers -- baseline {baseline_pps:.2f} pts/s, "
          f"aggregate {aggregate_pps:.2f} pts/s ({speedup:.2f}x), "
          f"replay hit rate {hit_rate:.0%} -> {OUTPUT}")

    # The smoke grid is too small to amortize builds, so the throughput
    # bound is only enforced on the real grid.
    if not SMOKE:
        assert speedup >= 2.0
    assert hit_rate >= 0.9
