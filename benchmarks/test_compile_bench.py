"""Compile-path benchmark: IR bind + lower wall-clock per kernel x ISA.

Times the vectorizing compiler itself -- workload binding plus the
lowering pass, i.e. everything between a kernel description and a
simulatable trace -- for every compiler-known kernel (the three
digest-pinned mirrors and the three compiler-only kernels) on all four
ISAs.  Emits ``benchmarks/BENCH_compile.json`` next to the core/serve
artifacts so the build-side cost of the compilation layer is tracked
run over run.

Set ``REPRO_BENCH_SMOKE=1`` (CI) to shrink the workload; the JSON then
carries ``"smoke": true`` so trajectories are not cross-compared.
"""

import json
import os
import time
from pathlib import Path

import pytest

from repro.kernels import ISAS, KERNELS
from repro.vc import COMPILED, compile_kernel

SMOKE = os.environ.get("REPRO_BENCH_SMOKE") == "1"
SCALE = 1 if SMOKE else 2
REPS = 2 if SMOKE else 3
OUTPUT = Path(__file__).parent / "BENCH_compile.json"

_results: dict[str, dict] = {}


@pytest.fixture(scope="module", autouse=True)
def emit_bench_json():
    """Write the accumulated measurements once the module finishes."""
    yield
    if not _results:
        return
    total_instrs = sum(row["instructions"]
                       for per_isa in _results.values()
                       for row in per_isa.values())
    total_seconds = sum(row["build_seconds"]
                        for per_isa in _results.values()
                        for row in per_isa.values())
    OUTPUT.write_text(json.dumps({
        "benchmark": "compile",
        "scale": SCALE,
        "smoke": SMOKE,
        "kernels": sorted(_results),
        "total_instructions": total_instrs,
        "total_build_seconds": round(total_seconds, 4),
        "instructions_per_second": (round(total_instrs / total_seconds)
                                    if total_seconds else None),
        "results": _results,
    }, indent=2) + "\n")
    print(f"\ncompile bench ({total_instrs} instructions in "
          f"{total_seconds:.2f}s) -> {OUTPUT}")


@pytest.mark.parametrize("kernel", sorted(COMPILED))
@pytest.mark.parametrize("isa", ISAS)
def test_compile_speed(kernel, isa):
    record = COMPILED[kernel]
    workload = KERNELS[kernel].make_workload(SCALE)
    best = None
    built = None
    for _ in range(REPS):
        start = time.perf_counter()
        binding = record.bind(workload)
        built = compile_kernel(record.ir, isa, binding, record.output_key)
        elapsed = time.perf_counter() - start
        best = elapsed if best is None else min(best, elapsed)
    assert len(built.trace) > 0
    _results.setdefault(kernel, {})[isa] = {
        "build_seconds": round(best, 6),
        "instructions": len(built.trace),
        "instructions_per_second": (round(len(built.trace) / best)
                                    if best else None),
    }
