"""Cycle-accounting overhead guard: ``accounting=True`` must stay cheap.

Runs the golden mini-grid (the coordinates ``tests/test_golden_digest.py``
pins) through two uncached Sessions -- one with plain points and one with
the same points flagged ``accounting=True`` -- interleaved over several
repetitions, and compares the best-of-N wall clocks.  The classifier is
a handful of integer comparisons per simulated cycle (and a closed-form
multiply per skipped span), so the accounted path should cost well under
the asserted bound.

Emits ``benchmarks/BENCH_explain.json``.  ``REPRO_BENCH_SMOKE=1``
shrinks the grid and repetitions; ``REPRO_EXPLAIN_OVERHEAD_MAX``
(percent, default 5) loosens the assertion for pathologically noisy
hosts without editing code.
"""

import json
import os
import time
from dataclasses import replace
from pathlib import Path

from repro.exp import Session
from repro.exp.engine import built_kernel

from test_obs_overhead import _grid_points

SMOKE = os.environ.get("REPRO_BENCH_SMOKE") == "1"
REPS = 2 if SMOKE else 3
MAX_OVERHEAD_PCT = float(os.environ.get("REPRO_EXPLAIN_OVERHEAD_MAX", "5"))
OUTPUT = Path(__file__).parent / "BENCH_explain.json"


def _timed_pass(points) -> float:
    """One uncached sweep through a fresh Session, in seconds."""
    session = Session(None, use_cache=False)
    t0 = time.perf_counter()
    results = session.run(points)
    elapsed = time.perf_counter() - t0
    assert len(results) == len(points)
    return elapsed


def test_accounting_overhead_under_bound():
    plain = _grid_points()
    accounted = [replace(p, accounting=True) for p in plain]
    for point in plain:         # warm the process-wide build memo, untimed
        built_kernel(point.target, point.isa)

    # Wall clocks on a shared host can lose to a transient load spike;
    # retry the whole measurement so only a *reproducible* overhead (a
    # real regression) trips the bound.
    attempts = []
    base = instrumented = overhead_pct = None
    for _ in range(3):
        off, on = [], []
        for _ in range(REPS):   # interleaved: drift hits both columns
            off.append(_timed_pass(plain))
            on.append(_timed_pass(accounted))
        base, instrumented = min(off), min(on)
        overhead_pct = (instrumented - base) / base * 100.0
        attempts.append(round(overhead_pct, 2))
        if overhead_pct < MAX_OVERHEAD_PCT:
            break

    payload = {
        "benchmark": "explain_overhead",
        "smoke": SMOKE,
        "points": len(plain),
        "reps": REPS,
        "accounting_off_seconds": round(base, 4),
        "accounting_on_seconds": round(instrumented, 4),
        "overhead_pct": round(overhead_pct, 2),
        "attempts": attempts,
        "bound_pct": MAX_OVERHEAD_PCT,
    }
    OUTPUT.write_text(json.dumps(payload, indent=2) + "\n")
    print(f"\naccounting overhead: off {base:.3f}s  on "
          f"{instrumented:.3f}s  ({overhead_pct:+.2f}%, bound "
          f"{MAX_OVERHEAD_PCT}%) -> {OUTPUT}")

    assert overhead_pct < MAX_OVERHEAD_PCT, payload
