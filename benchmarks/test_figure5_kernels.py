"""Figure 5: kernel speed-ups of the four ISAs across issue widths.

One benchmark per kernel panel.  Each timed region simulates the whole
4-ISA x 4-width grid under the idealized 1-cycle memory and asserts the
paper's shape claims; the resulting speed-up rows are attached as
``extra_info`` and printed.
"""

import pytest

from repro.eval.runner import built_kernel, kernel_speedup_grid
from repro.kernels import KERNEL_ORDER


@pytest.mark.parametrize("kernel", KERNEL_ORDER)
def test_figure5_panel(benchmark, kernel):
    for isa in ("alpha", "mmx", "mdmx", "mom"):
        built_kernel(kernel, isa, 1)      # build + verify outside the timer

    points = benchmark.pedantic(kernel_speedup_grid, args=(kernel,),
                                rounds=1, iterations=1)

    grid = {(p.isa, p.way): p.speedup for p in points}
    benchmark.extra_info["speedups"] = {
        f"{isa}@{way}": round(grid[(isa, way)], 2)
        for isa, way in grid
    }

    # Paper shape claims (Section 4.1):
    # 1. every media ISA beats scalar at every width;
    for way in (1, 2, 4, 8):
        for isa in ("mmx", "mdmx", "mom"):
            assert grid[(isa, way)] > grid[("alpha", way)], (isa, way)
    # 2. MOM adds gains over the best 1D SIMD ISA -- except rgb2ycc,
    #    whose vector length is only 3;
    best_simd4 = max(grid[("mmx", 4)], grid[("mdmx", 4)])
    if kernel == "rgb2ycc":
        assert grid[("mom", 4)] > 0.85 * best_simd4
    else:
        assert grid[("mom", 4)] > best_simd4
    # 3. MOM's relative advantage is largest at the narrow machine
    #    (the fetch-pressure argument).
    ratio_1way = grid[("mom", 1)] / max(grid[("mmx", 1)], grid[("mdmx", 1)])
    if kernel != "rgb2ycc":
        assert ratio_1way > 1.2

    print(f"\nFigure 5 / {kernel} (speed-up vs 1-way Alpha):")
    for way in (1, 2, 4, 8):
        row = "  ".join(f"{isa}={grid[(isa, way)]:6.1f}x"
                        for isa in ("alpha", "mmx", "mdmx", "mom"))
        print(f"  {way}-way: {row}")
