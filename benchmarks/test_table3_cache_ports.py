"""Table 3: port configurations of the four memory models."""

from repro.eval.tables import table3_rows
from repro.memsys import (CollapsingBufferHierarchy, ConventionalHierarchy,
                          MultiAddressHierarchy, VectorCacheHierarchy)


def test_table3(benchmark):
    rows = benchmark(table3_rows)

    assert rows[4]["conv_ma"] == {"l1_ports": 2, "l1_banks": 4,
                                  "l1_latency": 1, "l2_latency": 6}
    assert rows[8]["conv_ma"] == {"l1_ports": 4, "l1_banks": 8,
                                  "l1_latency": 2, "l2_latency": 6}
    assert rows[4]["vc_col"]["l2_ports"] == "1x2"
    assert rows[8]["vc_col"]["l2_ports"] == "1x4"
    assert rows[4]["vc_col"]["l2_latency"] == "8/10"

    # The concrete hierarchies must agree with the table.
    assert len(ConventionalHierarchy(4).port_free) == 2
    assert len(MultiAddressHierarchy(8).port_free) == 4
    assert VectorCacheHierarchy(4).params.vector_port_width == 2
    assert CollapsingBufferHierarchy(8).params.l2_latency == 10

    print("\nTable 3 (reproduced):")
    for way, cols in rows.items():
        print(f"  {way}-way: {cols}")
