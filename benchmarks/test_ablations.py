"""Ablation benchmarks for the design choices DESIGN.md calls out.

Each ablation toggles one mechanism of the MOM implementation and measures
its contribution on a representative kernel:

* **accumulator pipelining** (Section 2.1's central argument) -- without
  partial-sum chaining, MOM's matrix accumulates serialize at the
  functional-unit latency, exactly like MDMX;
* **media-unit lanes** -- the 8-way machine's 2x2 organization vs
  hypothetical 1- and 4-lane units;
* **register-file discipline** -- late (writeback-time) release and
  zero-idiom elision on the banked matrix file vs commit-time release.
"""

import pytest

from repro.cpu import Core, machine_config
from repro.cpu.config import FuConfig
from repro.eval.runner import built_kernel
from repro.memsys import PerfectMemory

import dataclasses


def _run(kernel, way=4, **core_kwargs):
    built = built_kernel(kernel, "mom", 1)
    cfg = machine_config(way, "mom")
    mem = PerfectMemory(1, cfg.mem_ports, cfg.mem_port_width)
    return Core(cfg, mem, **core_kwargs).run(built.trace).cycles


def test_ablation_accumulator_pipelining(benchmark):
    """motion2 leans on chained mommsqdb: pipelining must pay off."""
    built_kernel("motion2", "mom", 1)

    def measure():
        return {
            "chained": _run("motion2", acc_chaining=True),
            "serialized": _run("motion2", acc_chaining=False),
        }

    cycles = benchmark.pedantic(measure, rounds=1, iterations=1)
    benchmark.extra_info.update(cycles)
    assert cycles["chained"] < cycles["serialized"]
    print(f"\nAccumulator pipelining: {cycles['serialized']} -> "
          f"{cycles['chained']} cycles "
          f"({cycles['serialized'] / cycles['chained']:.2f}x)")


def test_ablation_media_lanes(benchmark):
    """Sweep vector lanes per media unit on the 8-way machine."""
    built = built_kernel("compensation", "mom", 1)
    base = machine_config(8, "mom")

    def sweep():
        out = {}
        for lanes in (1, 2, 4):
            cfg = dataclasses.replace(base, med_lanes=lanes,
                                      med_units=FuConfig(0, 2))
            mem = PerfectMemory(1, cfg.mem_ports, cfg.mem_port_width)
            out[lanes] = Core(cfg, mem).run(built.trace).cycles
        return out

    cycles = benchmark.pedantic(sweep, rounds=1, iterations=1)
    benchmark.extra_info["cycles_by_lanes"] = cycles
    assert cycles[2] <= cycles[1]
    assert cycles[4] <= cycles[2]
    print(f"\nMedia lanes sweep (8-way compensation): {cycles}")


def test_ablation_regfile_discipline(benchmark):
    """Late release + zero idioms vs strict commit-time reclamation."""
    built_kernel("idct", "mom", 1)

    def measure():
        return {
            "banked": _run("idct", late_release=True,
                           zero_idiom_elision=True),
            "strict": _run("idct", late_release=False,
                           zero_idiom_elision=False),
        }

    cycles = benchmark.pedantic(measure, rounds=1, iterations=1)
    benchmark.extra_info.update(cycles)
    assert cycles["banked"] <= cycles["strict"]
    print(f"\nRegister-file discipline (idct): strict={cycles['strict']} "
          f"banked={cycles['banked']}")


def test_ablation_vector_length(benchmark):
    """Speed-up of MOM motion estimation as the search window (and hence
    the amount of 2D work per scalar overhead) grows."""
    from repro.kernels import KERNELS, build_and_check

    spec = KERNELS["motion1"]

    def sweep():
        out = {}
        for scale in (1, 2):
            workload = spec.make_workload(scale)
            mom = build_and_check(spec, "mom", workload)
            cfg = machine_config(4, "mom")
            mem = PerfectMemory(1, cfg.mem_ports, cfg.mem_port_width)
            cycles = Core(cfg, mem).run(mom.trace).cycles
            out[scale] = cycles / len(workload.candidates)
        return out

    per_candidate = benchmark.pedantic(sweep, rounds=1, iterations=1)
    benchmark.extra_info["cycles_per_candidate"] = {
        str(k): round(v, 1) for k, v in per_candidate.items()
    }
    # Larger searches amortize setup: per-candidate cost must not grow.
    assert per_candidate[2] <= per_candidate[1] * 1.1
    print(f"\nPer-candidate MOM cycles by window scale: {per_candidate}")
