"""Table 2: multimedia register file sizes and area costs.

Checks the headline claim -- the MOM matrix file stores 5x the bits of the
MMX file at *lower* area (normalized 0.87 vs 1.00) thanks to banking.
"""

import pytest

from repro.eval.tables import table2_rows


def test_table2(benchmark):
    rows = benchmark(table2_rows)

    assert rows["mmx"]["media_regs"] == "32/64"
    assert rows["mdmx"]["media_regs"] == "32/52"
    assert rows["mdmx"]["acc_regs"] == "4/16"
    assert rows["mom"]["media_regs"] == "16/20"
    assert rows["mom"]["acc_regs"] == "2/4"

    # Paper values: sizes 0.5 / 0.78 / 2.6 KB, areas 1.00 / 1.19 / 0.87.
    assert rows["mmx"]["size_kb"] == pytest.approx(0.5, abs=0.01)
    assert rows["mdmx"]["size_kb"] == pytest.approx(0.78, abs=0.01)
    assert rows["mom"]["size_kb"] == pytest.approx(2.6, abs=0.05)
    assert rows["mmx"]["norm_area"] == 1.0
    assert rows["mdmx"]["norm_area"] == pytest.approx(1.19, abs=0.02)
    assert rows["mom"]["norm_area"] == pytest.approx(0.87, abs=0.01)

    # The size/area inversion the paper highlights:
    assert rows["mom"]["size_kb"] > 5 * rows["mmx"]["size_kb"]
    assert rows["mom"]["norm_area"] < rows["mmx"]["norm_area"]

    print("\nTable 2 (reproduced):")
    for isa, row in rows.items():
        print(f"  {isa:6s} {row}")
