"""Shared fixtures for the benchmark harness.

Each benchmark regenerates one table or figure of the paper.  Heavy
artifacts (verified kernel/app builds) are cached per session so the
timed region is the *simulation*, not the trace construction.
"""

import pytest


def pytest_configure(config):
    # Keep benchmark runs deterministic and comparable.
    config.option.benchmark_min_rounds = 1
    config.option.benchmark_warmup = False
