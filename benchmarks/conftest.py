"""Shared fixtures for the benchmark harness.

Each benchmark regenerates one table or figure of the paper.  Heavy
artifacts (verified kernel/app builds) are memoized per process by the
experiment engine, and cycle-level results persist in its on-disk cache --
so the first run times the *simulation*, while a warm-cache rerun of the
full grid skips simulation entirely and times only the cache reads.

Set ``REPRO_NO_CACHE=1`` to force every benchmark to re-simulate.
"""

import pytest

from repro.exp import Session, default_session


def pytest_configure(config):
    # Keep benchmark runs deterministic and comparable.
    config.option.benchmark_min_rounds = 1
    config.option.benchmark_warmup = False


@pytest.fixture(scope="session")
def exp_session() -> Session:
    """The process-wide engine session every benchmark shares."""
    return default_session()
