"""Frame-scale trace benchmark: columnar build + streaming consume.

Runs the ``frame-scale`` preset's configurations (one full 720x480 MPEG-2
frame per Figure 7 ISA) end to end -- functional build into the columnar
trace store, then cycle-level simulation through the core's streaming
consume path -- in a fresh subprocess per configuration so peak RSS is
measured cleanly per point.  Each configuration is also rebuilt with the
*seed* list-of-objects trace encoding (a plain list of ``DynInstr``) to
quantify what the columnar store buys; the headline criterion is the
scalar configuration, whose trace is ~61 million dynamic instructions.

Writes ``benchmarks/BENCH_trace.json``:

* per configuration: instruction count, columnar build seconds, sealed
  column storage, peak RSS, simulation seconds and core consume rate
  (instructions simulated per second), plus the object-encoding baseline's
  build seconds and peak RSS;
* ``headline``: build-speed and peak-RSS ratios for the scalar config.

Modes (the full frame is minutes of wall-clock per configuration):

* default -- a 64x48 smoke frame, streaming forced, small RSS budgets;
  keeps the tier-1 suite fast while exercising the full path.
* ``REPRO_TRACE_BENCH_FULL=1`` -- the real 720x480 frame and the
  headline >= 5x peak-RSS (or >= 3x build-speed) assertion.
* ``REPRO_TRACE_CONFIGS=mom-vectorcache,...`` -- restrict configurations
  (CI runs the fast subset under its RSS assertion).
* ``REPRO_TRACE_BASELINE=0`` -- skip the object-encoding baselines.
"""

import json
import os
import subprocess
import sys
from pathlib import Path

from repro.exp.spec import FRAME_SCALE_CONFIGS

FULL = os.environ.get("REPRO_TRACE_BENCH_FULL") == "1"
BASELINE = os.environ.get("REPRO_TRACE_BASELINE", "1") != "0"
OUTPUT = Path(__file__).parent / "BENCH_trace.json"

#: Smoke geometry: big enough that the scalar trace (~700k instructions)
#: dwarfs interpreter overhead, small enough for the tier-1 budget.
FRAME = (720, 480) if FULL else (64, 48)
WAY = 4

#: Peak-RSS budgets (MB) per configuration -- the "bounded memory" claim.
#: The full-frame scalar trace is ~13 GB as objects; columnar plus
#: the streaming consume path must stay within a laptop-class budget.
RSS_BUDGET_MB = {
    "alpha-conv": 8000 if FULL else 600,
    "mmx-conv": 3000 if FULL else 500,
    "mom-vectorcache": 1500 if FULL else 500,
}

_CHILD = r"""
import json, resource, sys, time

isa, memory, way, width, height, store, stream = sys.argv[1:8]
way, width, height = int(way), int(width), int(height)


def peak_rss_mb():
    # VmHWM resets at exec, so it measures *this* process; ru_maxrss is
    # inherited through fork from the (possibly huge) test runner and
    # only serves as the non-Linux fallback.
    try:
        with open("/proc/self/status") as fh:
            for line in fh:
                if line.startswith("VmHWM:"):
                    return int(line.split()[1]) / 1024
    except OSError:
        pass
    return resource.getrusage(resource.RUSAGE_SELF).ru_maxrss / 1024

if store == "objects":
    # The seed trace encoding: an eagerly-built Python list of DynInstr.
    # Builders resolve Trace through base_builder, so rebinding it there
    # reproduces the old storage behaviour without keeping dead code.
    import repro.emulib.base_builder as bb

    class LegacyTrace:
        def __init__(self, isa):
            self.isa = isa
            self.instructions = []

        def append(self, instr):
            self.instructions.append(instr)
            return instr

        def __len__(self):
            return len(self.instructions)

        def __iter__(self):
            return iter(self.instructions)

    bb.Trace = LegacyTrace

from repro.apps.mpeg2 import _build_encode
from repro.apps.workloads import video_frames

frames = video_frames(width, height, count=2)
start = time.perf_counter()
built = _build_encode(isa, frames, width, height)
build_seconds = time.perf_counter() - start
out = {"instructions": len(built.trace),
       "build_seconds": round(build_seconds, 3)}

if store == "columnar":
    out["storage_mb"] = round(built.trace.storage_bytes() / 1e6, 2)
    from repro.cpu import Core, machine_config
    from repro.exp.engine import make_memsys
    from repro.exp.spec import PointSpec

    if stream == "force":
        Core.STREAM_THRESHOLD = 0
    point = PointSpec(kind="app", target="mpeg2_frame", isa=isa, way=way,
                      memory=memory)
    core = Core(machine_config(way, isa), make_memsys(point))
    start = time.perf_counter()
    result = core.run(built.trace)
    sim_seconds = time.perf_counter() - start
    out["sim_seconds"] = round(sim_seconds, 3)
    out["cycles"] = result.cycles
    out["consume_instructions_per_second"] = round(
        result.instructions / sim_seconds) if sim_seconds else None

out["peak_rss_mb"] = round(peak_rss_mb(), 1)
print(json.dumps(out))
"""


def _run_child(isa, memory, store):
    width, height = FRAME
    stream = "default" if FULL else "force"
    env = dict(os.environ)
    env["PYTHONPATH"] = (str(Path(__file__).resolve().parents[1] / "src")
                         + os.pathsep + env.get("PYTHONPATH", ""))
    proc = subprocess.run(
        [sys.executable, "-c", _CHILD, isa, memory, str(WAY),
         str(width), str(height), store, stream],
        capture_output=True, text=True, env=env, timeout=7200)
    assert proc.returncode == 0, proc.stderr[-4000:]
    return json.loads(proc.stdout.splitlines()[-1])


def _selected_configs():
    chosen = os.environ.get("REPRO_TRACE_CONFIGS")
    configs = list(FRAME_SCALE_CONFIGS)
    if chosen:
        wanted = {c.strip() for c in chosen.split(",") if c.strip()}
        configs = [c for c in configs if c[0] in wanted]
        assert configs, f"no frame-scale config matches {chosen!r}"
    return configs


def test_frame_scale_trace_benchmark():
    report = {
        "mode": "full" if FULL else "smoke",
        "frame": list(FRAME),
        "way": WAY,
        "workload": "mpeg2_frame (one P-frame over a reference frame)",
        "configs": {},
    }
    for label, isa, memory in _selected_configs():
        entry = {"isa": isa, "memory": memory}
        col = _run_child(isa, memory, "columnar")
        entry["columnar"] = col
        budget = RSS_BUDGET_MB[label]
        assert col["peak_rss_mb"] < budget, (
            f"{label}: columnar build+simulate peak RSS "
            f"{col['peak_rss_mb']} MB exceeds the {budget} MB budget")
        if BASELINE:
            obj = _run_child(isa, memory, "objects")
            assert obj["instructions"] == col["instructions"]
            entry["object_baseline"] = obj
            entry["build_speedup_vs_objects"] = round(
                obj["build_seconds"] / col["build_seconds"], 2)
            entry["peak_rss_ratio_vs_objects"] = round(
                obj["peak_rss_mb"] / col["peak_rss_mb"], 2)
        report["configs"][label] = entry
        print(f"\n[{label}] {col['instructions']} instrs: "
              f"build {col['build_seconds']}s, sim {col['sim_seconds']}s "
              f"({col['consume_instructions_per_second']}/s), "
              f"peak RSS {col['peak_rss_mb']} MB"
              + (f" (objects: {entry['object_baseline']['peak_rss_mb']} MB,"
                 f" {entry['peak_rss_ratio_vs_objects']}x)"
                 if BASELINE else ""))

    if "alpha-conv" in report["configs"] and BASELINE:
        head = report["configs"]["alpha-conv"]
        report["headline"] = {
            "config": "alpha-conv",
            "instructions": head["columnar"]["instructions"],
            "build_speedup_vs_objects": head["build_speedup_vs_objects"],
            "peak_rss_ratio_vs_objects": head["peak_rss_ratio_vs_objects"],
        }
        if FULL:
            # The acceptance bar: on the frame-scale workload the columnar
            # store must build >= 3x faster or in >= 5x less peak memory
            # than the seed list-of-objects encoding.
            assert (head["build_speedup_vs_objects"] >= 3.0
                    or head["peak_rss_ratio_vs_objects"] >= 5.0), (
                report["headline"])

    # Only a complete full-geometry run may claim BENCH_trace.json --
    # like the other BENCH_*.json artifacts it is gitignored, produced
    # locally or uploaded from CI, and holds the frame-scale acceptance
    # numbers (the headline figures are recorded in CHANGES.md).  Smoke
    # and subset runs (tier-1 locally, the CI memory-smoke job) write
    # alongside it instead of silently replacing it.
    complete = FULL and BASELINE and set(report["configs"]) == {
        label for label, _isa, _mem in FRAME_SCALE_CONFIGS}
    if complete:
        target = OUTPUT
    elif FULL:          # distinct names so CI's smoke and full-subset
        target = OUTPUT.with_name("BENCH_trace.partial.json")
    else:               # steps upload side by side instead of clobbering
        target = OUTPUT.with_name("BENCH_trace.smoke.json")
    target.write_text(json.dumps(report, indent=2) + "\n")
    print(f"\nwrote {target}")
