"""Section 4.1's latency study: slow-down at 50-cycle memory.

Paper: Alpha slows 3-9x, MMX/MDMX 4-8x, MOM only 2-4x.  We assert the
ordering (MOM most tolerant, scalar least) per kernel and print the table.
"""

import pytest

from repro.eval.latency import run
from repro.eval.runner import built_kernel
from repro.kernels import KERNEL_ORDER


def test_latency_tolerance(benchmark):
    for kernel in KERNEL_ORDER:
        for isa in ("alpha", "mmx", "mdmx", "mom"):
            built_kernel(kernel, isa, 1)

    results = benchmark.pedantic(
        run, kwargs={"way": 4, "quiet": True}, rounds=1, iterations=1
    )

    benchmark.extra_info["slowdowns"] = {
        k: {isa: round(v, 2) for isa, v in row.items()}
        for k, row in results.items()
    }

    print("\nSlow-down, 1 -> 50 cycle memory (4-way):")
    tolerant = 0
    for kernel, row in results.items():
        print("  " + f"{kernel:16s} " +
              "  ".join(f"{isa}={v:5.2f}x" for isa, v in row.items()))
        if row["mom"] < row["alpha"] and row["mom"] < row["mmx"]:
            tolerant += 1
    # MOM is the most latency-tolerant ISA on (almost) every kernel;
    # rgb2ycc (VL=3) is the permitted exception.
    assert tolerant >= len(KERNEL_ORDER) - 1

    moms = [row["mom"] for k, row in results.items() if k != "rgb2ycc"]
    alphas = [row["alpha"] for row in results.values()]
    assert max(moms) < 5.0                # paper: 2x-4x
    assert max(alphas) > 4.0              # paper: 3x-9x
