"""Core-speed benchmark: simulator throughput per ISA, event vs busy-wait.

Times real simulation (``Core.run`` on a fresh core and memory system --
no result cache anywhere near the timed region, i.e. ``REPRO_NO_CACHE=1``
semantics) of a fixed mid-size idct trace per ISA, and the seed busy-wait
loop (``Core.run_reference``) on the same trace.  Emits
``benchmarks/BENCH_core.json`` with instructions-simulated-per-second for
both engines and the speedup, so the perf trajectory of the hottest path
in the package is tracked run over run.

Set ``REPRO_BENCH_SMOKE=1`` (CI) to shrink the workload; the JSON then
carries ``"smoke": true`` so trajectories are not cross-compared.
"""

import json
import os
import time
from pathlib import Path

import pytest

from repro.cpu import Core, machine_config
from repro.cpu.jit import NUMBA_VERSION, jit_enabled, numba_available, warm
from repro.exp.engine import built_kernel
from repro.memsys import PerfectMemory

SMOKE = os.environ.get("REPRO_BENCH_SMOKE") == "1"
#: jit rows are timed only with a real compiler -- benchmarking the
#: REPRO_JIT_PUREPY shim would record meaningless numbers.  The JSON
#: always says whether the rows are present ("numba"/"jit_rows"), so the
#: ``repro bench`` delta printer shows n/a instead of raising on hosts
#: where availability differs.
JIT_BENCH = numba_available() and jit_enabled()
KERNEL = "idct"
SCALE = 1 if SMOKE else 4
WAY = 4
ISAS = ("alpha", "mmx", "mdmx", "mom")
REPS = 2 if SMOKE else 3
OUTPUT = Path(__file__).parent / "BENCH_core.json"

_results: dict[str, dict] = {}


def _fresh_core(isa):
    cfg = machine_config(WAY, isa)
    return Core(cfg, PerfectMemory(1, cfg.mem_ports, cfg.mem_port_width))


def _time(engine_name, isa, trace, **kw):
    best = None
    result = None
    for _ in range(REPS):
        core = _fresh_core(isa)
        engine = getattr(core, engine_name)
        start = time.perf_counter()
        result = engine(trace, **kw)
        elapsed = time.perf_counter() - start
        best = elapsed if best is None else min(best, elapsed)
    return best, result


@pytest.fixture(scope="module", autouse=True)
def emit_bench_json():
    """Write the accumulated measurements once the module finishes."""
    yield
    if not _results:
        return
    speedups = [row["speedup"] for row in _results.values()]
    geomean = 1.0
    for s in speedups:
        geomean *= s
    geomean **= 1.0 / len(speedups)
    OUTPUT.write_text(json.dumps({
        "benchmark": "core_speed",
        "kernel": KERNEL,
        "scale": SCALE,
        "way": WAY,
        "smoke": SMOKE,
        "numba": NUMBA_VERSION,
        "jit_rows": JIT_BENCH,
        "geomean_speedup": round(geomean, 2),
        "results": _results,
    }, indent=2) + "\n")
    print(f"\ncore speed (geomean speedup {geomean:.2f}x) -> {OUTPUT}")


@pytest.mark.parametrize("isa", ISAS)
def test_core_speed(isa):
    built = built_kernel(KERNEL, isa, SCALE)
    trace = built.trace
    trace.timing_records()      # one-time trace classification, untimed

    # jit=False pins the interpreted path so the event row stays
    # comparable with the PR 2/6 trajectories on numba-equipped hosts.
    event_s, event_result = _time("run", isa, trace, jit=False)
    reference_s, reference_result = _time("run_reference", isa, trace)
    assert event_result == reference_result, "engines diverged"

    n = len(trace)
    row = {
        "instructions": n,
        "event_seconds": round(event_s, 4),
        "event_ips": round(n / event_s),
        "reference_seconds": round(reference_s, 4),
        "reference_ips": round(n / reference_s),
        "speedup": round(reference_s / event_s, 2),
    }
    if JIT_BENCH:
        warm()      # compile outside the timed region
        jit_s, jit_result = _time("run", isa, trace, jit=True)
        assert jit_result == event_result, "jit path diverged"
        assert jit_result.meta["jit"] is True
        row["jit_seconds"] = round(jit_s, 4)
        row["jit_ips"] = round(n / jit_s)
        row["jit_speedup"] = round(event_s / jit_s, 2)
    _results[isa] = row
    print(f"\n{isa:6s} n={n:6d}  event {row['event_ips']:>8d} i/s  "
          f"reference {row['reference_ips']:>8d} i/s  "
          f"speedup {row['speedup']:.2f}x")

    # Sanity bound only: the event scheduler must not be slower than the
    # busy-wait loop.  The headline >= 3x claim lives in BENCH_core.json
    # (uploaded as a CI artifact by the dedicated smoke step), not in an
    # assertion, so wall-clock noise on shared runners cannot fail the
    # correctness gate.
    assert row["speedup"] > 1.0
