"""Batch-lane benchmark: aggregate sweep throughput, BatchCore vs Core.

Times a same-trace configuration sweep run (a) sequentially through
``Core.run`` -- one fresh core per point, exactly what ``--no-batch``
does -- and (b) as one ``BatchCore`` pass over the whole grid.  The
headline regime is *streaming*: traces past ``STREAM_THRESHOLD``, where
``Core.run`` re-decodes the trace on every run and the batch engine
decodes once for all lanes.  The benchmark reproduces that regime at a
bench-friendly size by lowering the threshold for the timed region and
invalidating the summary before every run (frame-scale traces hit it
naturally; building a real 720x480 frame takes minutes, see the
``REPRO_BATCH_BENCH_FRAME`` gate below).

Also measured: the single-lane overhead (a 1-lane batch vs ``Core.run``
of the same point) and the cached-records regime (small-kernel grids,
where sequential runs share one decoded record list anyway and only the
leaner lane stepper differs).  Emits ``benchmarks/BENCH_batch.json``.

Set ``REPRO_BENCH_SMOKE=1`` (CI) to shrink the trace and the grid; the
JSON then carries ``"smoke": true`` so trajectories are not
cross-compared.  Set ``REPRO_BATCH_BENCH_FRAME=1`` to additionally sweep
a prefix of the real 720x480 MPEG-2 frame trace (expensive: the frame
build alone is ~2 minutes).
"""

import json
import os
import time
from pathlib import Path

import pytest

from repro.cpu import Core, machine_config
from repro.cpu.batch import BatchCore, LaneSpec
from repro.cpu.jit import NUMBA_VERSION, jit_enabled, numba_available, warm
from repro.emulib.trace import Trace
from repro.exp.engine import built_app, built_kernel
from repro.memsys import PerfectMemory

SMOKE = os.environ.get("REPRO_BENCH_SMOKE") == "1"
#: jit rows only with a real compiler (the pure-python shim would record
#: meaningless numbers); availability is always recorded in the JSON so
#: ``repro bench`` deltas across differently-equipped hosts stay readable.
JIT_BENCH = numba_available() and jit_enabled()
FRAME = os.environ.get("REPRO_BATCH_BENCH_FRAME") == "1"
STREAM_N = 1 << 15 if SMOKE else 1 << 19
FRAME_N = 1 << 20
WAYS = (2, 4) if SMOKE else (1, 2, 4, 8)
LATENCIES = (1, 50) if SMOKE else (1, 10, 50, 200)
OUTPUT = Path(__file__).parent / "BENCH_batch.json"

_results: dict[str, dict] = {}


def _stream_trace(n, builder=lambda: built_kernel("idct", "mmx").trace):
    """A fresh n-instruction trace (never the memoized build's object --
    the benchmark invalidates summaries, which must not corrupt the
    process-wide build memo other tests share)."""
    src = builder()
    trace = Trace(src.isa)
    while len(trace) < n:
        trace.extend(src)
    trace.truncate(n)
    return trace


def _grid():
    return [(way, lat) for way in WAYS for lat in LATENCIES]


def _lane(way, lat, isa="mmx"):
    cfg = machine_config(way, isa)
    return LaneSpec(cfg, PerfectMemory(lat, cfg.mem_ports,
                                       cfg.mem_port_width))


@pytest.fixture()
def force_streaming():
    """Make both engines treat the bench trace as frame-scale."""
    saved = Core.STREAM_THRESHOLD, BatchCore.STREAM_THRESHOLD
    Core.STREAM_THRESHOLD = BatchCore.STREAM_THRESHOLD = 1 << 10
    try:
        yield
    finally:
        Core.STREAM_THRESHOLD, BatchCore.STREAM_THRESHOLD = saved


@pytest.fixture(scope="module", autouse=True)
def emit_bench_json():
    """Write the accumulated measurements once the module finishes."""
    yield
    if not _results:
        return
    payload = {
        "benchmark": "batch_speed",
        "smoke": SMOKE,
        "numba": NUMBA_VERSION,
        "jit_rows": JIT_BENCH,
        **_results,
    }
    OUTPUT.write_text(json.dumps(payload, indent=2) + "\n")
    headline = _results.get("streaming", {}).get("aggregate_speedup")
    print(f"\nbatch speed (streaming aggregate {headline}x) -> {OUTPUT}")


def _sweep(trace, grid, *, streamed):
    """(sequential_seconds, batch_seconds, results) for one grid.

    Both baselines pin ``jit=False`` so the rows stay comparable with the
    PR 6 trajectory on numba-equipped hosts; the compiled path gets its
    own rows via :func:`_jit_pass`."""
    lanes = [_lane(way, lat) for way, lat in grid]

    seq_results = []
    t0 = time.perf_counter()
    for way, lat in grid:
        if streamed:
            trace.invalidate_summary()
        cfg = machine_config(way, "mmx")
        core = Core(cfg, PerfectMemory(lat, cfg.mem_ports,
                                       cfg.mem_port_width))
        seq_results.append(core.run(trace, jit=False))
    seq_s = time.perf_counter() - t0

    if streamed:
        trace.invalidate_summary()
    batch = BatchCore(lanes, jit=False)
    t0 = time.perf_counter()
    batch_results = batch.run(trace)
    batch_s = time.perf_counter() - t0

    for point, (seq_r, batch_r) in zip(grid, zip(seq_results,
                                                 batch_results)):
        assert seq_r == batch_r, f"engines diverged at {point}"
    return seq_s, batch_s, batch_results


def _jit_pass(trace, grid, reference, *, streamed):
    """Time one compiled BatchCore pass over the grid, verified against
    the interpreted results; returns its wall-clock seconds."""
    warm()      # compile outside the timed region
    if streamed:
        trace.invalidate_summary()
    batch = BatchCore([_lane(way, lat) for way, lat in grid], jit=True)
    t0 = time.perf_counter()
    results = batch.run(trace)
    jit_s = time.perf_counter() - t0
    for point, (ref_r, jit_r) in zip(grid, zip(reference, results)):
        assert jit_r == ref_r, f"jit path diverged at {point}"
        assert jit_r.meta["jit"] is True, point
    return jit_s


def test_streaming_sweep(force_streaming):
    """The headline: aggregate grid-points/sec on a streamed same-trace
    sweep, BatchCore vs sequential Core.run."""
    trace = _stream_trace(STREAM_N)
    grid = _grid()
    seq_s, batch_s, results = _sweep(trace, grid, streamed=True)
    row = {
        "instructions": len(trace),
        "configs": len(grid),
        "sequential_seconds": round(seq_s, 3),
        "batch_seconds": round(batch_s, 3),
        "sequential_points_per_sec": round(len(grid) / seq_s, 4),
        "batch_points_per_sec": round(len(grid) / batch_s, 4),
        "aggregate_speedup": round(seq_s / batch_s, 2),
    }
    if JIT_BENCH:
        jit_s = _jit_pass(trace, grid, results, streamed=True)
        row["jit_batch_seconds"] = round(jit_s, 3)
        row["jit_points_per_sec"] = round(len(grid) / jit_s, 4)
        row["jit_speedup_vs_batch"] = round(batch_s / jit_s, 2)
        row["jit_speedup_vs_sequential"] = round(seq_s / jit_s, 2)
    _results["streaming"] = row
    print(f"\nstreaming n={row['instructions']} configs={row['configs']}  "
          f"seq {seq_s:.1f}s  batch {batch_s:.1f}s  "
          f"{row['aggregate_speedup']:.2f}x")
    # Sanity bound only: batching a streamed sweep must beat re-decoding
    # per point.  The headline number lives in BENCH_batch.json (uploaded
    # as a CI artifact), not in an assertion, so wall-clock noise on
    # shared runners cannot fail the correctness gate.
    assert row["aggregate_speedup"] > 1.0


def test_single_lane_overhead(force_streaming):
    """A 1-lane batch must not cost meaningfully more than Core.run --
    it is what the engine degenerates to on unbatchable singletons."""
    trace = _stream_trace(STREAM_N)
    way, lat = WAYS[-1], LATENCIES[0]

    trace.invalidate_summary()
    cfg = machine_config(way, "mmx")
    core = Core(cfg, PerfectMemory(lat, cfg.mem_ports, cfg.mem_port_width))
    t0 = time.perf_counter()
    core_result = core.run(trace)
    core_s = time.perf_counter() - t0

    trace.invalidate_summary()
    batch = BatchCore([_lane(way, lat)])
    t0 = time.perf_counter()
    batch_result = batch.run(trace)[0]
    batch_s = time.perf_counter() - t0
    assert batch_result == core_result

    row = {
        "instructions": len(trace),
        "way": way,
        "latency": lat,
        "core_seconds": round(core_s, 3),
        "batch_seconds": round(batch_s, 3),
        "overhead_ratio": round(batch_s / core_s, 2),
    }
    _results["single_lane"] = row
    print(f"\nsingle lane  core {core_s:.1f}s  batch {batch_s:.1f}s  "
          f"ratio {row['overhead_ratio']:.2f}")
    assert row["overhead_ratio"] < 2.0


def test_cached_grid():
    """Context regime: records decoded once and memoized, where
    sequential Core runs already share the decode."""
    built = built_kernel("idct", "mmx")
    trace = built.trace
    trace.timing_records()      # one-time classification, untimed
    grid = _grid()
    seq_s, batch_s, _ = _sweep(trace, grid, streamed=False)
    row = {
        "instructions": len(trace),
        "configs": len(grid),
        "sequential_seconds": round(seq_s, 4),
        "batch_seconds": round(batch_s, 4),
        "aggregate_speedup": round(seq_s / batch_s, 2),
    }
    _results["cached"] = row
    print(f"\ncached n={row['instructions']} configs={row['configs']}  "
          f"seq {seq_s:.2f}s  batch {batch_s:.2f}s  "
          f"{row['aggregate_speedup']:.2f}x")
    # The stepper alone should at least hold its ground here; the decode
    # amortization that pays for batching belongs to the streaming test.
    assert row["aggregate_speedup"] > 0.5


@pytest.mark.skipif(not FRAME, reason="set REPRO_BATCH_BENCH_FRAME=1 "
                    "(builds a 720x480 MPEG-2 frame, ~2 minutes)")
def test_frame_scale_sweep(force_streaming):
    """The frame-scale preset's workload: a prefix of the real 720x480
    MPEG-2 P-frame trace swept over the full grid in one pass."""
    trace = _stream_trace(
        FRAME_N, builder=lambda: built_app("mpeg2_frame", "mmx").trace)
    grid = _grid()
    seq_s, batch_s, results = _sweep(trace, grid, streamed=True)
    row = {
        "app": "mpeg2_frame",
        "frame_prefix_instructions": len(trace),
        "configs": len(grid),
        "sequential_seconds": round(seq_s, 3),
        "batch_seconds": round(batch_s, 3),
        "aggregate_speedup": round(seq_s / batch_s, 2),
    }
    if JIT_BENCH:
        jit_s = _jit_pass(trace, grid, results, streamed=True)
        row["jit_batch_seconds"] = round(jit_s, 3)
        row["jit_points_per_sec"] = round(len(grid) / jit_s, 4)
        row["jit_speedup_vs_batch"] = round(batch_s / jit_s, 2)
    _results["frame"] = row
    print(f"\nframe n={row['frame_prefix_instructions']} "
          f"configs={row['configs']}  seq {seq_s:.1f}s  "
          f"batch {batch_s:.1f}s  {row['aggregate_speedup']:.2f}x")
    assert row["aggregate_speedup"] > 1.0
