"""Fetch-pressure study (Sections 4.1 and 5).

Quantifies the paper's embedded-systems claim: MOM packs "an order of
magnitude more operations per instruction than MMX or MDMX" and keeps the
largest share of its wide-machine performance on a 1-way machine.  Since
package 1.7 the study also measures the pressure directly -- the CPI
stack's fetch-bound cycles on the 1-way machine -- so both the
instruction-count argument and its measured counterpart are asserted.
"""

from repro.eval.fetch_pressure import mom_fetch_advantage, run
from repro.eval.runner import built_kernel
from repro.kernels import KERNEL_ORDER


def test_fetch_pressure(benchmark):
    for kernel in KERNEL_ORDER:
        for isa in ("alpha", "mmx", "mdmx", "mom"):
            built_kernel(kernel, isa, 1)

    results = benchmark.pedantic(run, kwargs={"quiet": True},
                                 rounds=1, iterations=1)

    instr_ratios = {
        kernel: row["mmx"].instructions / row["mom"].instructions
        for kernel, row in results.items()
    }
    measured = mom_fetch_advantage(results)
    benchmark.extra_info["mmx_instrs_per_mom_instr"] = {
        k: round(v, 1) for k, v in instr_ratios.items()
    }
    benchmark.extra_info["measured_fetch_bound_ratio"] = {
        k: round(v, 1) for k, v in measured.items()
    }

    print("\nFetch economy (MMX per MOM, instruction count vs measured "
          "1-way fetch-bound cycles):")
    for kernel in results:
        print(f"  {kernel:16s} {instr_ratios[kernel]:5.1f}x "
              f"instrs  {measured[kernel]:5.1f}x cycles")

    # "an order of magnitude" holds for the 2D-parallel kernels; rgb2ycc
    # (VL=3) is the documented exception.
    big = [k for k, v in instr_ratios.items() if v >= 6]
    assert len(big) >= 5
    # Measured attribution agrees in direction everywhere: MOM never
    # spends *more* 1-way cycles fetch-bound than MMX, and the kernels
    # whose MOM runs stay backend-bound show the full order of magnitude.
    assert all(v >= 1 for v in measured.values())
    assert sum(1 for v in measured.values() if v >= 6) >= 3
    # MOM's ops/instruction dwarfs MMX's everywhere but rgb2ycc.
    for kernel, row in results.items():
        if kernel == "rgb2ycc":
            continue
        assert row["mom"].ops_per_instruction > 2.5 * row["mmx"].ops_per_instruction
    # Narrow-machine retention: MOM keeps the largest share of its 8-way
    # performance on the 1-way machine for the majority of kernels.
    wins = sum(
        1 for row in results.values()
        if row["mom"].retention_1way
        >= max(row["mmx"].retention_1way, row["mdmx"].retention_1way)
    )
    assert wins >= 5
