"""Figure 7: full-application speed-ups on realistic cache hierarchies.

One benchmark per application panel: five configurations (Alpha/MMX on the
conventional cache; MOM on multi-address, vector and collapsing-buffer
caches) at 4- and 8-way issue, normalized to the 4-way Alpha run.
"""

import pytest

from repro.apps import APP_ORDER
from repro.eval.figure7 import built_app, run_app


@pytest.mark.parametrize("app", APP_ORDER)
def test_figure7_panel(benchmark, app):
    for isa in ("alpha", "mmx", "mom"):
        built_app(app, isa, 1)            # build + verify outside the timer

    points = benchmark.pedantic(run_app, args=(app,),
                                kwargs={"quiet": True},
                                rounds=1, iterations=1)

    grid = {(p.config, p.way): p.speedup for p in points}
    benchmark.extra_info["speedups"] = {
        f"{cfg}@{way}": round(v, 2) for (cfg, way), v in grid.items()
    }

    print(f"\nFigure 7 / {app} (speed-up vs 4-way Alpha):")
    for way in (4, 8):
        row = "  ".join(
            f"{cfg.split('-', 1)[1] if '-' in cfg else cfg}="
            f"{grid[(cfg, way)]:5.2f}x"
            for cfg in ("alpha-conv", "mmx-conv", "mom-multiaddress",
                        "mom-vectorcache", "mom-collapsing"))
        print(f"  {way}-way: {row}")

    # Paper shape claims (Section 4.2.2):
    for way in (4, 8):
        assert grid[("mmx-conv", way)] > grid[("alpha-conv", way)]
        best_mom = max(grid[(c, way)] for c in
                       ("mom-multiaddress", "mom-vectorcache",
                        "mom-collapsing"))
        assert best_mom > grid[("mmx-conv", way)] * 0.95
    # The multi-address cache wins at 4-way (working sets fit in L1).
    assert grid[("mom-multiaddress", 4)] >= grid[("mom-vectorcache", 4)]
    # mpeg2 encode: large strides hurt the vector cache most among
    # the MOM organizations.
    if app == "mpeg2_encode":
        assert grid[("mom-vectorcache", 8)] < grid[("mom-multiaddress", 8)]
        assert grid[("mom-vectorcache", 8)] <= grid[("mom-collapsing", 8)]
