"""Table 1: processor configurations.

Regenerates the processor-configuration table and pins every paper value;
the timed region is configuration construction (trivially fast -- this
bench exists to print the table alongside the others).
"""

from repro.eval.tables import table1_rows


def test_table1(benchmark):
    rows = benchmark(table1_rows)

    by_way = {r["way"]: r for r in rows}
    assert by_way[1]["rob"] == 8 and by_way[1]["lsq"] == 4
    assert by_way[2]["rob"] == 16 and by_way[2]["bimodal"] == 2048
    assert by_way[4]["rob"] == 32 and by_way[4]["btb"] == 512
    assert by_way[8]["rob"] == 64 and by_way[8]["bimodal"] == 16384
    assert by_way[8]["int"] == "2/2" and by_way[4]["int"] == "2/1"
    assert by_way[8]["med"] == "4 - (2x2)"       # MOM: 2 units x 2 lanes
    assert by_way[8]["ports"] == "4 - (2x2)"
    assert by_way[1]["int_regs"] == "32/40"
    assert by_way[8]["fp_regs"] == "32/96"

    print("\nTable 1 (reproduced):")
    for row in rows:
        print("  " + "  ".join(f"{k}={v}" for k, v in row.items()))
