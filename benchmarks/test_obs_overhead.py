"""Telemetry overhead guard: enabled spans + metrics must stay under 3%.

Runs the golden mini-grid (the same coordinates
``tests/test_golden_digest.py`` pins) through two uncached Sessions --
one with telemetry disabled (the no-op singletons) and one with spans
recording into a MemorySink and a live metrics registry -- interleaved
over several repetitions, and compares the best-of-N wall clocks.  The
instrumentation sits at group/point granularity (never per trace
record), so the enabled path should cost well under the asserted bound;
phase timing itself runs identically in both configurations and cancels
out of the comparison.

Emits ``benchmarks/BENCH_obs.json``.  ``REPRO_BENCH_SMOKE=1`` shrinks
the grid and repetitions; ``REPRO_OBS_OVERHEAD_MAX`` (percent, default
3) loosens the assertion for pathologically noisy hosts without editing
code.
"""

import json
import os
import time
from pathlib import Path

from repro.exp import PointSpec, Session
from repro.exp.engine import built_kernel
from repro.obs import Obs

SMOKE = os.environ.get("REPRO_BENCH_SMOKE") == "1"
REPS = 2 if SMOKE else 3
MAX_OVERHEAD_PCT = float(os.environ.get("REPRO_OBS_OVERHEAD_MAX", "3"))
OUTPUT = Path(__file__).parent / "BENCH_obs.json"

#: Realistic-cache model per ISA, as in tests/test_golden_digest.py.
_CACHE = {"alpha": "conventional", "mmx": "conventional",
          "mdmx": "conventional", "mom": "multiaddress"}


def _grid_points() -> list[PointSpec]:
    """The golden mini-grid as PointSpecs (subset in smoke mode)."""
    kernels = ("idct",) if SMOKE else ("idct", "motion2")
    ways = (2,) if SMOKE else (2, 8)
    points = []
    for kernel in kernels:
        for isa in ("alpha", "mmx", "mdmx", "mom"):
            for way in ways:
                points.append(PointSpec(kind="kernel", target=kernel,
                                        isa=isa, way=way))
                points.append(PointSpec(kind="kernel", target=kernel,
                                        isa=isa, way=way, latency=50))
                points.append(PointSpec(kind="kernel", target=kernel,
                                        isa=isa, way=way,
                                        memory=_CACHE[isa]))
                if isa == "mom":
                    for memory in ("vectorcache", "collapsing"):
                        points.append(PointSpec(kind="kernel", target=kernel,
                                                isa=isa, way=way,
                                                memory=memory))
    return points


def _timed_pass(points, obs=None) -> tuple[float, int]:
    """One uncached sweep through a fresh Session: (seconds, span count)."""
    session = Session(None, use_cache=False, obs=obs)
    t0 = time.perf_counter()
    results = session.run(points)
    elapsed = time.perf_counter() - t0
    assert len(results) == len(points)
    # Drain so records never accumulate across repetitions.
    spans = len(obs.sink.drain()) if obs is not None else 0
    return elapsed, spans


def test_enabled_telemetry_overhead_under_bound():
    points = _grid_points()
    for point in points:        # warm the process-wide build memo, untimed
        built_kernel(point.target, point.isa)

    # A wall-clock comparison on a shared host can lose to a transient
    # load spike; retry the whole measurement before failing so only a
    # *reproducible* overhead (a real regression) trips the bound.
    attempts = []
    base = instrumented = overhead_pct = spans = None
    for _ in range(3):
        disabled, enabled = [], []
        for _ in range(REPS):   # interleaved: drift hits both columns
            disabled.append(_timed_pass(points, obs=None)[0])
            seconds, spans = _timed_pass(points, obs=Obs.make())
            enabled.append(seconds)
        base, instrumented = min(disabled), min(enabled)
        overhead_pct = (instrumented - base) / base * 100.0
        attempts.append(round(overhead_pct, 2))
        if overhead_pct < MAX_OVERHEAD_PCT:
            break

    payload = {
        "benchmark": "obs_overhead",
        "smoke": SMOKE,
        "points": len(points),
        "reps": REPS,
        "disabled_seconds": round(base, 4),
        "enabled_seconds": round(instrumented, 4),
        "overhead_pct": round(overhead_pct, 2),
        "attempts": attempts,
        "bound_pct": MAX_OVERHEAD_PCT,
        "spans_per_sweep": spans,
    }
    OUTPUT.write_text(json.dumps(payload, indent=2) + "\n")
    print(f"\nobs overhead: disabled {base:.3f}s  enabled "
          f"{instrumented:.3f}s  ({overhead_pct:+.2f}%, bound "
          f"{MAX_OVERHEAD_PCT}%) -> {OUTPUT}")

    assert overhead_pct < MAX_OVERHEAD_PCT, payload
