"""Compatibility shim: this offline environment lacks the `wheel` package,
so `pip install -e .` (PEP 660) cannot build. `python setup.py develop`
installs an egg-link instead. Configuration lives in pyproject.toml."""

from setuptools import setup

setup()
