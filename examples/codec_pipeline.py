#!/usr/bin/env python
"""Full-application demo: encode and decode video through the MOM pipeline.

Runs the MPEG-2-style application from :mod:`repro.apps` on its synthetic
moving-object workload in all three full-program configurations, verifies
the decoder reproduces the encoder's reconstruction bit-exactly, reports
compression quality, and compares cycles on the realistic 4-way memory
hierarchies of Figure 7 -- simulated through the unified experiment engine,
so a rerun serves every point from the persistent result cache.

Run:  python examples/codec_pipeline.py
"""

import numpy as np

from repro.apps import psnr
from repro.apps.workloads import video_frames
from repro.exp import PointSpec, SweepSpec, built_app, default_session


def main() -> None:
    frames = video_frames()

    built = {}
    for isa in ("alpha", "mmx", "mom"):
        enc = built_app("mpeg2_encode", isa)
        dec = built_app("mpeg2_decode", isa)
        assert np.array_equal(dec.outputs["decoded"], enc.outputs["recon"]), \
            "decoder must reproduce the encoder's reconstruction"
        built[isa] = (enc, dec)
        print(f"{isa:6s}: encode {len(enc.trace):6d} instrs "
              f"(vectorizable {enc.vector_fraction():4.0%}), "
              f"decode {len(dec.trace):6d} instrs")

    quality = psnr(built["alpha"][0].outputs["recon"][0], frames[1])
    print(f"\nReconstruction quality: {quality:.1f} dB PSNR "
          f"(quantizer step 16)")

    print("\nEncoder cycles on the realistic 4-way hierarchy:")
    session = default_session()
    sweep = SweepSpec(name="codec-demo", kind="app",
                      targets=("mpeg2_encode",), ways=(4,),
                      pairs=(("alpha", "conventional"),
                             ("mmx", "conventional"),
                             ("mom", "multiaddress")))
    results = session.run(sweep)
    baseline = None
    for point in sweep.points():
        cycles = results[point].cycles
        if baseline is None:
            baseline = cycles
        print(f"  {point.isa:6s}: {cycles:7d} cycles  "
              f"({baseline / cycles:4.2f}x vs scalar)")


if __name__ == "__main__":
    main()
