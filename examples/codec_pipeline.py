#!/usr/bin/env python
"""Full-application demo: encode and decode video through the MOM pipeline.

Runs the MPEG-2-style application from :mod:`repro.apps` on its synthetic
moving-object workload in all three full-program configurations, verifies
the decoder reproduces the encoder's reconstruction bit-exactly, reports
compression quality, and compares cycles on the realistic 4-way memory
hierarchies of Figure 7.

Run:  python examples/codec_pipeline.py
"""

import numpy as np

from repro.apps import APPS, psnr
from repro.apps.workloads import video_frames
from repro.cpu import Core, machine_config
from repro.memsys import ConventionalHierarchy, MultiAddressHierarchy


def main() -> None:
    frames = video_frames()
    encode, decode = APPS["mpeg2_encode"], APPS["mpeg2_decode"]

    built = {}
    for isa in ("alpha", "mmx", "mom"):
        enc = encode.build(isa, 1)
        dec = decode.build(isa, 1)
        assert np.array_equal(dec.outputs["decoded"], enc.outputs["recon"]), \
            "decoder must reproduce the encoder's reconstruction"
        built[isa] = (enc, dec)
        print(f"{isa:6s}: encode {len(enc.trace):6d} instrs "
              f"(vectorizable {enc.vector_fraction():4.0%}), "
              f"decode {len(dec.trace):6d} instrs")

    quality = psnr(built["alpha"][0].outputs["recon"][0], frames[1])
    print(f"\nReconstruction quality: {quality:.1f} dB PSNR "
          f"(quantizer step 16)")

    print("\nEncoder cycles on the realistic 4-way hierarchy:")
    configs = (
        ("alpha", ConventionalHierarchy), ("mmx", ConventionalHierarchy),
        ("mom", MultiAddressHierarchy),
    )
    baseline = None
    for isa, mem_cls in configs:
        cfg = machine_config(4, isa)
        cycles = Core(cfg, mem_cls(4)).run(built[isa][0].trace).cycles
        if baseline is None:
            baseline = cycles
        print(f"  {isa:6s}: {cycles:7d} cycles  "
              f"({baseline / cycles:4.2f}x vs scalar)")


if __name__ == "__main__":
    main()
