#!/usr/bin/env python
"""Figure 3 as an executable analysis: who covers the dist1 loop nest how.

The paper's motivating example is the 16x16 SAD of the MPEG-2 motion
estimator, whose rows are ``length`` bytes apart in the reference frame.
This example prints, for each ISA paradigm, how many elements one
instruction covers, how well the registers are utilized, and how many
instructions the full nest takes -- including the "just make the register
wider" (Altivec) scenario the paper rebuts.

Run:  python examples/vectorization_comparison.py
"""

from repro.core.vectorize import LoopNest, compare, dist1_nest, mmx_like


def show(nest: LoopNest, title: str) -> None:
    print(f"\n--- {title} ---")
    print(f"{'paradigm':10s}{'elems/instr':>12s}{'utilization':>13s}"
          f"{'instructions':>14s}")
    for name, cov in compare(nest).items():
        print(f"{name:10s}{cov.elements_per_instruction:>12d}"
              f"{cov.utilization:>12.0%}{cov.instructions_for(nest):>14d}")


def main() -> None:
    # The paper's case: a 352-pixel-wide reference frame.
    nest = dist1_nest(length=352)
    show(nest, "dist1 16x16 SAD, frame width 352 (strided rows)")

    # What if rows were contiguous? Then a 1024-bit register would do
    # as well as a matrix -- but they are not, which is the point.
    contiguous = LoopNest(inner_trip=16, outer_trip=16, elem_bits=8,
                          stride_bytes=16)
    show(contiguous, "same nest with contiguous rows (hypothetical)")

    wide = mmx_like(dist1_nest(length=352), register_bits=1024)
    print("\nAltivec-style 1024-bit register on the strided nest covers"
          f" {wide.elements_per_instruction} elements per instruction --"
          "\nno better than 128-bit: the next row starts 352 bytes away."
          "\nMOM packs 128 elements because its rows take an arbitrary"
          " stride.")


if __name__ == "__main__":
    main()
