#!/usr/bin/env python
"""Quickstart: write a MOM program, run it on the cycle-level machine.

Computes the SAD between two 16x16 pixel blocks three ways -- scalar Alpha,
MMX and MOM -- verifies all three agree with numpy, and compares their
instruction counts and simulated cycles on the paper's 4-way machine.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro import AlphaBuilder, MmxBuilder, MomBuilder
from repro.cpu import Core, machine_config
from repro.emulib.alpha_builder import emit_abs_diff
from repro.isa.model import ElemType
from repro.memsys import PerfectMemory

BLOCK = 16


def make_blocks():
    rng = np.random.default_rng(7)
    a = rng.integers(0, 256, (BLOCK, BLOCK), dtype=np.uint8)
    b = rng.integers(0, 256, (BLOCK, BLOCK), dtype=np.uint8)
    return a, b


def alpha_sad(a, c):
    """Scalar baseline: two loads and three ALU ops per pixel."""
    b = AlphaBuilder()
    pa, pb = b.ireg(b.mem.alloc_array(a)), b.ireg(b.mem.alloc_array(c))
    total, va, vb, d, scr = (b.ireg() for _ in range(5))
    rows = b.ireg(BLOCK)
    site = b.site()
    b.li(total, 0)
    for _ in range(BLOCK):
        for i in range(BLOCK):
            b.ldbu(va, pa, i)
            b.ldbu(vb, pb, i)
            emit_abs_diff(b, d, va, vb, scr)
            b.addq(total, total, d)
        b.addi(pa, pa, BLOCK)
        b.addi(pb, pb, BLOCK)
        b.subi(rows, rows, 1)
        b.bne(rows, site)
    return b, int(total.value)


def mmx_sad(a, c):
    """One psadb per 8 pixels: 1D sub-word SIMD."""
    b = MmxBuilder()
    pa, pb = b.ireg(b.mem.alloc_array(a)), b.ireg(b.mem.alloc_array(c))
    ra, rb, d, acc = b.mreg(), b.mreg(), b.mreg(), b.mreg()
    out = b.ireg()
    b.pxor(acc, acc, acc)
    for row in range(BLOCK):
        for half in (0, 8):
            b.m_ldq(ra, pa, row * BLOCK + half)
            b.m_ldq(rb, pb, row * BLOCK + half)
            b.psadb(d, ra, rb)
            b.paddw(acc, acc, d)
    b.movd_from(out, acc)
    return b, int(out.value)


def mom_sad(a, c):
    """One mommsadb per 8-pixel column of the whole block: 2D DLP."""
    b = MomBuilder()
    pa, pb = b.ireg(b.mem.alloc_array(a)), b.ireg(b.mem.alloc_array(c))
    stride = b.ireg(BLOCK)
    ma, mb = b.mreg(), b.mreg()
    acc = b.areg()
    out = b.ireg()
    b.setvli(BLOCK)
    for half in (0, 8):
        b.momldq(ma, pa, stride)
        b.momldq(mb, pb, stride)
        b.mommsadb(acc, ma, mb)
        b.addi(pa, pa, 8)
        b.addi(pb, pb, 8)
    b.racl(out, acc, ElemType.Q)
    return b, int(out.value)


def main():
    a, c = make_blocks()
    expected = int(np.abs(a.astype(int) - c.astype(int)).sum())

    results = {}
    for name, fn in (("alpha", alpha_sad), ("mmx", mmx_sad), ("mom", mom_sad)):
        builder, value = fn(a, c)
        assert value == expected, f"{name} computed {value}, want {expected}"
        cfg = machine_config(4, name)
        mem = PerfectMemory(1, cfg.mem_ports, cfg.mem_port_width)
        sim = Core(cfg, mem).run(builder.trace)
        results[name] = (len(builder.trace), sim.cycles)

    print(f"16x16 SAD = {expected} (all ISAs agree)\n")
    print(f"{'ISA':8s}{'instructions':>14s}{'cycles (4-way)':>16s}")
    base = results["alpha"][1]
    for name, (instrs, cycles) in results.items():
        print(f"{name:8s}{instrs:>14d}{cycles:>16d}   "
              f"({base / cycles:4.1f}x vs scalar)")


if __name__ == "__main__":
    main()
