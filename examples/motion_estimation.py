#!/usr/bin/env python
"""Run the paper's motivating workload end to end: MPEG-2 motion estimation.

Builds the fullsearch spiral over a synthetic frame in all four ISAs,
verifies every version finds the same motion vector, then sweeps machine
widths through the unified experiment engine (:mod:`repro.exp`) to
reproduce one panel of Figure 5 and the latency-tolerance experiment for
this kernel.  Rerunning the script hits the engine's persistent result
cache, so every simulation point is skipped the second time.

Run:  python examples/motion_estimation.py
"""

from repro.exp import PointSpec, SweepSpec, built_kernel, default_session
from repro.kernels import KERNELS

KERNEL = "motion1"
ISAS = ("alpha", "mmx", "mdmx", "mom")


def main() -> None:
    workload = KERNELS[KERNEL].make_workload(1)
    print(f"Searching {len(workload.candidates)} candidate positions "
          f"in a {workload.ref.shape[1]}x{workload.ref.shape[0]} frame\n")

    built = {}
    for isa in ISAS:
        built[isa] = built_kernel(KERNEL, isa)    # build + golden check
        best = int(built[isa].outputs["best"][0])
        print(f"{isa:6s}: {len(built[isa].trace):6d} instructions, "
              f"best candidate #{best} "
              f"(SAD {int(built[isa].outputs['distances'][best])})")
    assert len({int(b.outputs["best"][0]) for b in built.values()}) == 1, \
        "all ISAs must find the same motion vector"

    # One declarative sweep covers the whole Figure 5 panel plus the
    # 50-cycle latency points; the engine caches every result on disk.
    session = default_session()
    sweep = SweepSpec(name="motion-panel", kind="kernel", targets=(KERNEL,),
                      isas=ISAS, ways=(1, 2, 4, 8), latencies=(1, 50))
    results = session.run(sweep)

    def cycles(isa: str, way: int, latency: int = 1) -> int:
        return results[PointSpec(kind="kernel", target=KERNEL, isa=isa,
                                 way=way, latency=latency)].cycles

    print("\nSpeed-up vs 1-way Alpha (perfect 1-cycle memory):")
    baseline = cycles("alpha", 1)
    for way in (1, 2, 4, 8):
        cells = [f"{isa}={baseline / cycles(isa, way):5.1f}x"
                 for isa in ISAS]
        print(f"  {way}-way: " + "  ".join(cells))

    print("\nSlow-down when memory latency grows 1 -> 50 cycles (4-way):")
    for isa in ISAS:
        ratio = cycles(isa, 4, 50) / cycles(isa, 4)
        print(f"  {isa:6s}: {ratio:4.1f}x slower")
    print("\nMOM's matrix loads amortize the latency over 16 strided rows —"
          "\nthe streaming behaviour that makes it an embedded candidate.")
    print(f"\n(engine cache: {session.hits} hits, {session.misses} misses)")


if __name__ == "__main__":
    main()
