#!/usr/bin/env python
"""Run the paper's motivating workload end to end: MPEG-2 motion estimation.

Builds the fullsearch spiral over a synthetic frame in all four ISAs,
verifies every version finds the same motion vector, then sweeps machine
widths to reproduce one panel of Figure 5 and the latency-tolerance
experiment for this kernel.

Run:  python examples/motion_estimation.py
"""

from repro.cpu import Core, machine_config
from repro.kernels import KERNELS, build_and_check
from repro.memsys import PerfectMemory


def main() -> None:
    spec = KERNELS["motion1"]
    workload = spec.make_workload(1)
    print(f"Searching {len(workload.candidates)} candidate positions "
          f"in a {workload.ref.shape[1]}x{workload.ref.shape[0]} frame\n")

    built = {}
    for isa in ("alpha", "mmx", "mdmx", "mom"):
        built[isa] = build_and_check(spec, isa, workload)
        best = int(built[isa].outputs["best"][0])
        print(f"{isa:6s}: {len(built[isa].trace):6d} instructions, "
              f"best candidate #{best} "
              f"(SAD {int(built[isa].outputs['distances'][best])})")

    print("\nSpeed-up vs 1-way Alpha (perfect 1-cycle memory):")
    baseline = None
    for way in (1, 2, 4, 8):
        cells = []
        for isa, bk in built.items():
            cfg = machine_config(way, isa)
            mem = PerfectMemory(1, cfg.mem_ports, cfg.mem_port_width)
            cycles = Core(cfg, mem).run(bk.trace).cycles
            if baseline is None:
                baseline = cycles
            cells.append(f"{isa}={baseline / cycles:5.1f}x")
        print(f"  {way}-way: " + "  ".join(cells))

    print("\nSlow-down when memory latency grows 1 -> 50 cycles (4-way):")
    for isa, bk in built.items():
        cfg = machine_config(4, isa)
        fast = Core(cfg, PerfectMemory(1, cfg.mem_ports,
                                       cfg.mem_port_width)).run(bk.trace)
        slow = Core(cfg, PerfectMemory(50, cfg.mem_ports,
                                       cfg.mem_port_width)).run(bk.trace)
        print(f"  {isa:6s}: {slow.cycles / fast.cycles:4.1f}x slower")
    print("\nMOM's matrix loads amortize the latency over 16 strided rows —"
          "\nthe streaming behaviour that makes it an embedded candidate.")


if __name__ == "__main__":
    main()
