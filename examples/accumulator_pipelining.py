#!/usr/bin/env python
"""Figure 4: why MOM tolerates accumulator latency and MDMX does not.

An MDMX accumulator instruction reads the accumulator it writes, so a chain
of dependent accumulations serializes at the functional-unit latency.  A MOM
matrix accumulation carries up to 16 rows inside one instruction; the
hardware keeps `latency` partial accumulators in flight and folds them once,
so the chain streams at one row per lane per cycle.

This example runs both the analytical model
(:class:`repro.core.accumulator.PipelinedAccumulation`) and the actual
cycle-level simulator on a dot-product workload, showing they agree.

Run:  python examples/accumulator_pipelining.py
"""

import numpy as np

from repro import MdmxBuilder, MomBuilder
from repro.core.accumulator import PipelinedAccumulation
from repro.cpu import Core, machine_config
from repro.isa.mmx import MED_MUL_LATENCY
from repro.isa.model import ElemType
from repro.memsys import PerfectMemory

WORDS = 64          # 64 packed words = 256 16-bit MACs


def mdmx_dot(data_a, data_b, accumulators: int):
    """Chained pmaddah over 1, 2 or 4 accumulators (software pipelining)."""
    b = MdmxBuilder()
    pa = b.ireg(b.mem.alloc_array(data_a))
    pb = b.ireg(b.mem.alloc_array(data_b))
    ra, rb = b.mreg(), b.mreg()
    accs = [b.areg() for _ in range(accumulators)]
    for w in range(WORDS):
        b.m_ldq(ra, pa, 8 * w)
        b.m_ldq(rb, pb, 8 * w)
        b.pmaddah(accs[w % accumulators], ra, rb)
    return b


def mom_dot(data_a, data_b):
    """mommvmh matrix-dot instructions, 16 words each."""
    b = MomBuilder()
    pa = b.ireg(b.mem.alloc_array(data_a))
    pb = b.ireg(b.mem.alloc_array(data_b))
    stride = b.ireg(8)
    ma, mb = b.mreg(), b.mreg()
    acc = b.areg()
    out = b.ireg()
    b.setvli(16)
    for base in range(0, WORDS, 16):
        b.momldq(ma, pa, stride)
        b.momldq(mb, pb, stride)
        b.mommvmh(acc, ma, mb)
        b.addi(pa, pa, 16 * 8)
        b.addi(pb, pb, 16 * 8)
    b.racl(out, acc, ElemType.Q)
    return b


def main() -> None:
    rng = np.random.default_rng(3)
    data_a = rng.integers(-2048, 2048, WORDS * 4).astype(np.int16)
    data_b = rng.integers(-2048, 2048, WORDS * 4).astype(np.int16)

    model = PipelinedAccumulation(latency=MED_MUL_LATENCY, lanes=1)
    print("Analytical model (cycles for 64 chained accumulations):")
    print(f"  MDMX, 1 accumulator : {model.mdmx_cycles(WORDS)}")
    print(f"  MDMX, 4 accumulators: {model.mdmx_cycles(WORDS) // 4}"
          " (4 independent chains)")
    print(f"  MOM,  4 matrix ops  : {model.mom_cycles(rows=16, instructions=4)}")

    print("\nCycle-level simulator (4-way machine, perfect memory):")
    for accumulators in (1, 2, 4):
        b = mdmx_dot(data_a, data_b, accumulators)
        cfg = machine_config(4, "mdmx")
        r = Core(cfg, PerfectMemory(1, cfg.mem_ports, 1)).run(b.trace)
        print(f"  MDMX, {accumulators} accumulator(s): {r.cycles} cycles")
    b = mom_dot(data_a, data_b)
    cfg = machine_config(4, "mom")
    r = Core(cfg, PerfectMemory(1, cfg.mem_ports, cfg.mem_port_width)).run(b.trace)
    print(f"  MOM, matrix ops      : {r.cycles} cycles")
    print("\nThe MDMX chain shortens only by adding architectural "
          "accumulators;\nMOM streams the whole reduction through one.")


if __name__ == "__main__":
    main()
